// Tests for the two RouteNet variants: shapes, determinism, feature
// sensitivity (the architectural point of the paper), gradient flow into
// every parameter, weight persistence, and trainability.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "core/routenet.hpp"
#include "core/routenet_ext.hpp"
#include "core/trainer.hpp"
#include "data/generator.hpp"
#include "nn/ops.hpp"
#include "topo/zoo.hpp"

namespace {

using namespace rnx;

data::Dataset small_dataset(std::size_t n = 6, std::uint64_t seed = 5) {
  data::GeneratorConfig cfg;
  cfg.target_packets = 8'000;
  return data::Dataset(
      data::generate_dataset(topo::ring(5), n, cfg, seed));
}

core::ModelConfig tiny_config() {
  core::ModelConfig mc;
  mc.state_dim = 8;
  mc.readout_hidden = 8;
  mc.iterations = 2;
  return mc;
}

TEST(ModelForward, OutputShapeMatchesPaths) {
  const data::Dataset ds = small_dataset(2);
  const data::Scaler sc = data::Scaler::fit(ds.samples());
  const core::RouteNet orig(tiny_config());
  const core::ExtendedRouteNet ext(tiny_config());
  for (const auto& s : ds.samples()) {
    const nn::NoGradGuard guard;
    const nn::Var a = orig.forward(s, sc);
    const nn::Var b = ext.forward(s, sc);
    EXPECT_EQ(a.rows(), s.paths.size());
    EXPECT_EQ(a.cols(), 1u);
    EXPECT_EQ(b.rows(), s.paths.size());
    EXPECT_EQ(b.cols(), 1u);
  }
}

TEST(ModelForward, DeterministicGivenWeights) {
  const data::Dataset ds = small_dataset(1);
  const data::Scaler sc = data::Scaler::fit(ds.samples());
  const core::ExtendedRouteNet m(tiny_config());
  const nn::NoGradGuard guard;
  const nn::Var a = m.forward(ds[0], sc);
  const nn::Var b = m.forward(ds[0], sc);
  for (std::size_t i = 0; i < a.rows(); ++i)
    EXPECT_DOUBLE_EQ(a.value()(i, 0), b.value()(i, 0));
}

TEST(ModelForward, InitSeedChangesPredictions) {
  const data::Dataset ds = small_dataset(1);
  const data::Scaler sc = data::Scaler::fit(ds.samples());
  core::ModelConfig c1 = tiny_config();
  core::ModelConfig c2 = tiny_config();
  c2.init_seed = 777;
  const core::ExtendedRouteNet m1(c1), m2(c2);
  const nn::NoGradGuard guard;
  EXPECT_NE(m1.forward(ds[0], sc).value()(0, 0),
            m2.forward(ds[0], sc).value()(0, 0));
}

TEST(ModelForward, TracedExposesStates) {
  const data::Dataset ds = small_dataset(1);
  const data::Scaler sc = data::Scaler::fit(ds.samples());
  const nn::NoGradGuard guard;
  const auto tr_orig = core::RouteNet(tiny_config()).forward_traced(ds[0], sc);
  EXPECT_EQ(tr_orig.path_states.rows(), ds[0].paths.size());
  EXPECT_EQ(tr_orig.link_states.rows(), ds[0].num_links());
  EXPECT_FALSE(tr_orig.node_states.defined());  // original has no nodes

  const auto tr_ext =
      core::ExtendedRouteNet(tiny_config()).forward_traced(ds[0], sc);
  EXPECT_EQ(tr_ext.node_states.rows(), static_cast<std::size_t>(ds[0].num_nodes));
  EXPECT_EQ(tr_ext.node_states.cols(), tiny_config().state_dim);
}

// The architectural point of the paper: the extended model *sees* queue
// sizes; the original is provably blind to them.
TEST(QueueSensitivity, ExtendedSeesQueuesOriginalDoesNot) {
  const data::Dataset ds = small_dataset(2);
  const data::Scaler sc = data::Scaler::fit(ds.samples());
  data::Sample flipped = ds[0];
  for (auto& q : flipped.queue_pkts)
    q = (q == topo::kTinyQueuePackets) ? topo::kStandardQueuePackets
                                       : topo::kTinyQueuePackets;

  const nn::NoGradGuard guard;
  const core::RouteNet orig(tiny_config());
  const core::ExtendedRouteNet ext(tiny_config());

  const nn::Var orig_a = orig.forward(ds[0], sc);
  const nn::Var orig_b = orig.forward(flipped, sc);
  const nn::Var ext_a = ext.forward(ds[0], sc);
  const nn::Var ext_b = ext.forward(flipped, sc);

  double orig_diff = 0.0, ext_diff = 0.0;
  for (std::size_t i = 0; i < orig_a.rows(); ++i) {
    orig_diff += std::abs(orig_a.value()(i, 0) - orig_b.value()(i, 0));
    ext_diff += std::abs(ext_a.value()(i, 0) - ext_b.value()(i, 0));
  }
  EXPECT_DOUBLE_EQ(orig_diff, 0.0);  // original cannot react to queues
  EXPECT_GT(ext_diff, 1e-6);         // extended must react
}

TEST(TrafficSensitivity, BothModelsReactToTraffic) {
  const data::Dataset ds = small_dataset(1);
  const data::Scaler sc = data::Scaler::fit(ds.samples());
  data::Sample heavier = ds[0];
  for (auto& p : heavier.paths) p.traffic_bps *= 3.0;
  const nn::NoGradGuard guard;
  for (const core::Model* m :
       {static_cast<const core::Model*>(new core::RouteNet(tiny_config())),
        static_cast<const core::Model*>(
            new core::ExtendedRouteNet(tiny_config()))}) {
    const nn::Var a = m->forward(ds[0], sc);
    const nn::Var b = m->forward(heavier, sc);
    double diff = 0.0;
    for (std::size_t i = 0; i < a.rows(); ++i)
      diff += std::abs(a.value()(i, 0) - b.value()(i, 0));
    EXPECT_GT(diff, 1e-6) << m->name();
    delete m;
  }
}

TEST(ModelGradients, FlowIntoEveryParameter) {
  const data::Dataset ds = small_dataset(1);
  const data::Scaler sc = data::Scaler::fit(ds.samples());
  for (const bool extended : {false, true}) {
    std::unique_ptr<core::Model> m;
    if (extended)
      m = std::make_unique<core::ExtendedRouteNet>(tiny_config());
    else
      m = std::make_unique<core::RouteNet>(tiny_config());
    const nn::Var loss =
        core::Trainer::sample_loss(*m, ds[0], sc, /*min_delivered=*/1);
    ASSERT_TRUE(loss.defined());
    loss.backward();
    for (auto& [name, v] : m->named_params()) {
      double norm = 0.0;
      for (const double g : v.grad().flat()) norm += g * g;
      EXPECT_GT(norm, 0.0) << (extended ? "ext " : "orig ") << name;
    }
  }
}

TEST(ModelGradients, NodeRuleVariantsBothTrain) {
  const data::Dataset ds = small_dataset(1);
  const data::Scaler sc = data::Scaler::fit(ds.samples());
  for (const auto rule : {core::NodeUpdateRule::kSumPathStates,
                          core::NodeUpdateRule::kPositionalMessages}) {
    core::ModelConfig mc = tiny_config();
    mc.node_rule = rule;
    const core::ExtendedRouteNet m(mc);
    const nn::Var loss = core::Trainer::sample_loss(m, ds[0], sc, 1);
    ASSERT_TRUE(loss.defined());
    loss.backward();
    // RNN_N must receive gradient under both rules.
    for (auto& [name, v] : m.named_params())
      if (name.rfind("rnn_n", 0) == 0) {
        double norm = 0.0;
        for (const double g : v.grad().flat()) norm += g * g;
        EXPECT_GT(norm, 0.0) << name;
      }
  }
}

TEST(ModelPersistence, SaveLoadReproducesPredictions) {
  const data::Dataset ds = small_dataset(1);
  const data::Scaler sc = data::Scaler::fit(ds.samples());
  const std::string path = "/tmp/rnx_model_test.rnxw";
  core::ExtendedRouteNet a(tiny_config());
  a.save_weights(path);
  core::ModelConfig other = tiny_config();
  other.init_seed = 999;  // different init, same architecture
  core::ExtendedRouteNet b(other);
  b.load_weights(path);
  const nn::NoGradGuard guard;
  const nn::Var pa = a.forward(ds[0], sc);
  const nn::Var pb = b.forward(ds[0], sc);
  for (std::size_t i = 0; i < pa.rows(); ++i)
    EXPECT_DOUBLE_EQ(pa.value()(i, 0), pb.value()(i, 0));
  std::filesystem::remove(path);
}

TEST(ModelPersistence, ArchitectureMismatchRejected) {
  const std::string path = "/tmp/rnx_model_test2.rnxw";
  core::RouteNet orig(tiny_config());
  orig.save_weights(path);
  core::ExtendedRouteNet ext(tiny_config());
  EXPECT_THROW(ext.load_weights(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Training, LossDecreasesOnSmallDataset) {
  const data::Dataset ds = small_dataset(8, 11);
  const data::Scaler sc = data::Scaler::fit(ds.samples());
  core::ExtendedRouteNet m(tiny_config());
  core::TrainConfig tc;
  tc.epochs = 12;
  tc.batch_samples = 2;  // 4 optimizer steps per epoch on 8 samples
  tc.lr = 3e-3;
  tc.verbose = false;
  core::Trainer trainer(m, tc);
  const auto history = trainer.fit(ds, sc);
  ASSERT_EQ(history.size(), 12u);
  EXPECT_LT(history.back().train_loss, 0.5 * history.front().train_loss);
}

TEST(Training, IterationCountMatters) {
  // T=0 would mean no message passing; we assert T is respected by
  // checking that different T gives different predictions.
  const data::Dataset ds = small_dataset(1);
  const data::Scaler sc = data::Scaler::fit(ds.samples());
  core::ModelConfig c1 = tiny_config();
  c1.iterations = 1;
  core::ModelConfig c4 = tiny_config();
  c4.iterations = 4;
  const core::ExtendedRouteNet m1(c1), m4(c4);
  const nn::NoGradGuard guard;
  EXPECT_NE(m1.forward(ds[0], sc).value()(0, 0),
            m4.forward(ds[0], sc).value()(0, 0));
}

// Single path 0->1->2 on a line: every link receives exactly one
// path-position message, so mean and sum aggregation coincide.
data::Sample single_path_sample() {
  data::Sample s;
  s.topo_name = "line3";
  s.num_nodes = 3;
  s.links = {{0, 1}, {1, 0}, {1, 2}, {2, 1}};
  s.link_capacity_bps = {1e6, 1e6, 1e6, 1e6};
  s.queue_pkts = {32, 1, 32};
  data::PathRecord p0;
  p0.src = 0;
  p0.dst = 2;
  p0.nodes = {0, 1, 2};
  p0.links = {0, 2};
  p0.traffic_bps = 1e5;
  p0.mean_delay_s = 1e-3;
  p0.delivered = 100;
  s.paths = {p0};
  s.validate();
  return s;
}

TEST(LinkMeanAggregation, NoOpWhenEachLinkCarriesOneMessage) {
  const data::Sample s = single_path_sample();
  const data::Scaler sc = data::Scaler::fit({&s, 1});
  core::ModelConfig off = tiny_config();
  core::ModelConfig on = tiny_config();
  on.link_mean_aggregation = true;
  const nn::NoGradGuard guard;
  // Every 1/count factor is exactly 1.0, so both variants of both
  // architectures agree bitwise.
  const nn::Tensor a0 = core::RouteNet(off).forward(s, sc).value();
  const nn::Tensor a1 = core::RouteNet(on).forward(s, sc).value();
  const nn::Tensor b0 = core::ExtendedRouteNet(off).forward(s, sc).value();
  const nn::Tensor b1 = core::ExtendedRouteNet(on).forward(s, sc).value();
  for (std::size_t i = 0; i < a0.size(); ++i)
    EXPECT_EQ(a0.flat()[i], a1.flat()[i]);
  for (std::size_t i = 0; i < b0.size(); ++i)
    EXPECT_EQ(b0.flat()[i], b1.flat()[i]);
}

TEST(LinkMeanAggregation, ChangesMultiPathForwardAndStaysFinite) {
  // ring(5) all-pairs routing shares links across paths, so the mean
  // genuinely rescales messages — outputs must differ from the sum
  // aggregation yet stay finite.
  const data::Dataset ds = small_dataset(1);
  const data::Scaler sc = data::Scaler::fit(ds.samples());
  core::ModelConfig on = tiny_config();
  on.link_mean_aggregation = true;
  const nn::NoGradGuard guard;
  for (const bool extended : {false, true}) {
    const std::unique_ptr<core::Model> base = core::make_model(
        extended ? core::ModelKind::kExtended : core::ModelKind::kOriginal,
        tiny_config());
    const std::unique_ptr<core::Model> mean = core::make_model(
        extended ? core::ModelKind::kExtended : core::ModelKind::kOriginal,
        on);
    const nn::Tensor a = base->forward(ds[0], sc).value();
    const nn::Tensor b = mean->forward(ds[0], sc).value();
    bool any_diff = false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_TRUE(std::isfinite(b.flat()[i]));
      any_diff |= a.flat()[i] != b.flat()[i];
    }
    EXPECT_TRUE(any_diff) << (extended ? "ext" : "orig");
  }
}

TEST(ScaleInvariantFeatures, ForwardIgnoresScalerMoments) {
  // The whole point of the mode: inputs are sample-local ratios, so the
  // (normalized) forward no longer depends on which dataset the scaler
  // was fitted on.
  const data::Dataset ds = small_dataset(2);
  const data::Scaler fit_a = data::Scaler::fit({&ds.samples()[0], 1});
  const data::Scaler fit_b = data::Scaler::fit({&ds.samples()[1], 1});
  core::ModelConfig si = tiny_config();
  si.scale_invariant_features = true;
  const core::ExtendedRouteNet model(si);
  const nn::NoGradGuard guard;
  const nn::Tensor pa = model.forward(ds[0], fit_a).value();
  const nn::Tensor pb = model.forward(ds[0], fit_b).value();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(std::isfinite(pa.flat()[i]));
    EXPECT_EQ(pa.flat()[i], pb.flat()[i]);
  }
  // And the features really enter the pass: z-scored vs scale-invariant
  // inputs give different predictions for the same weights.
  const core::ExtendedRouteNet plain(tiny_config());
  const nn::Tensor pz = plain.forward(ds[0], fit_a).value();
  bool any_diff = false;
  for (std::size_t i = 0; i < pa.size(); ++i)
    any_diff |= pa.flat()[i] != pz.flat()[i];
  EXPECT_TRUE(any_diff);
}

TEST(Training, SampleLossUndefinedWhenNoValidLabels) {
  const data::Dataset ds = small_dataset(1);
  const data::Scaler sc = data::Scaler::fit(ds.samples());
  data::Sample s = ds[0];
  for (auto& p : s.paths) p.delivered = 0;
  const core::ExtendedRouteNet m(tiny_config());
  EXPECT_FALSE(core::Trainer::sample_loss(m, s, sc, 10).defined());
}

TEST(Training, EarlyStoppingTriggers) {
  const data::Dataset ds = small_dataset(6, 13);
  const auto [val, train] = ds.split(2);
  const data::Scaler sc = data::Scaler::fit(train.samples());
  core::ExtendedRouteNet m(tiny_config());
  core::TrainConfig tc;
  tc.epochs = 50;
  tc.patience = 2;
  tc.lr = 0.0;  // no learning -> val loss flat -> stop after patience
  // Adam rejects lr=0, so use a tiny lr instead.
  tc.lr = 1e-12;
  tc.verbose = false;
  core::Trainer trainer(m, tc);
  const auto history = trainer.fit(train, sc, &val);
  EXPECT_LE(history.size(), 4u);  // stopped long before 50
}

}  // namespace
