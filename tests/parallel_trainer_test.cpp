// The data-parallel training engine: bitwise determinism across thread
// counts, replica cloning, batch-fill gradient scaling, and parallel
// batched inference.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/routenet.hpp"
#include "core/routenet_ext.hpp"
#include "core/trainer.hpp"
#include "data/generator.hpp"
#include "topo/zoo.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace rnx;

// Small but non-trivial dataset: ring topology keeps the simulator fast
// while producing multi-hop paths for real message passing.
const data::Dataset& tiny_dataset() {
  static const data::Dataset ds = [] {
    util::set_log_level(util::LogLevel::kWarn);
    data::GeneratorConfig gen;
    gen.target_packets = 4'000;
    return data::Dataset(
        data::generate_dataset(topo::ring(6), /*count=*/6, gen, /*seed=*/99));
  }();
  return ds;
}

const data::Scaler& tiny_scaler() {
  static const data::Scaler sc =
      data::Scaler::fit(tiny_dataset().samples());
  return sc;
}

core::ModelConfig small_model_config() {
  core::ModelConfig mc;
  mc.state_dim = 6;
  mc.readout_hidden = 8;
  mc.iterations = 2;
  return mc;
}

std::vector<nn::Tensor> train_and_snapshot(std::size_t threads,
                                           std::size_t batch_samples,
                                           bool fused = true) {
  core::ModelConfig mc = small_model_config();
  mc.fused_gru = fused;
  core::ExtendedRouteNet model(mc);
  core::TrainConfig tc;
  tc.epochs = 3;
  tc.batch_samples = batch_samples;
  tc.min_delivered = 1;
  tc.threads = threads;
  tc.verbose = false;
  core::Trainer trainer(model, tc);
  (void)trainer.fit(tiny_dataset(), tiny_scaler());
  std::vector<nn::Tensor> out;
  for (const auto& [n, v] : model.named_params()) out.push_back(v.value());
  return out;
}

void expect_identical(const std::vector<nn::Tensor>& a,
                      const std::vector<nn::Tensor>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t t = 0; t < a.size(); ++t) {
    ASSERT_TRUE(a[t].same_shape(b[t]));
    for (std::size_t i = 0; i < a[t].size(); ++i)
      EXPECT_EQ(a[t].flat()[i], b[t].flat()[i])
          << "tensor " << t << " entry " << i;
  }
}

TEST(ParallelTrainer, BitwiseIdenticalAcrossThreadCounts) {
  const auto serial = train_and_snapshot(/*threads=*/1, /*batch=*/4);
  expect_identical(serial, train_and_snapshot(/*threads=*/2, 4));
  expect_identical(serial, train_and_snapshot(/*threads=*/4, 4));
}

// The satellite fix: a trailing partial batch must scale by its actual
// fill.  6 samples with batch 4 yields a 4-batch and a 2-batch; under the
// seed's 1/batch_samples scaling the trailer's step shrank by half, so
// batch 4 and batch 12 (one 6-batch) training disagreed even on identical
// sample -> batch assignments.  With fill scaling, batch 12 and batch 6
// see the same single full-dataset batch and must agree exactly.
TEST(ParallelTrainer, PartialBatchScalesByActualFill) {
  const auto one_batch_exact = train_and_snapshot(1, /*batch=*/6);
  const auto one_batch_padded = train_and_snapshot(1, /*batch=*/12);
  expect_identical(one_batch_exact, one_batch_padded);
}

TEST(ParallelTrainer, CloneMatchesOriginalForwardAndIsIndependent) {
  core::ExtendedRouteNet model(small_model_config());
  const std::unique_ptr<core::Model> copy = model.clone();
  const auto& s = tiny_dataset()[0];
  const nn::NoGradGuard guard;
  const nn::Tensor a = model.forward(s, tiny_scaler()).value();
  const nn::Tensor b = copy->forward(s, tiny_scaler()).value();
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a.flat()[i], b.flat()[i]);
  // Independent tape nodes: nudging the copy leaves the original alone.
  nn::NamedParams cp = copy->named_params();
  cp[0].second.mutable_value()(0, 0) += 1.0;
  const nn::Tensor c = model.forward(s, tiny_scaler()).value();
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a.flat()[i], c.flat()[i]);
}

TEST(ParallelTrainer, ForwardBatchMatchesSequentialForward) {
  core::RouteNet model(small_model_config());
  util::ThreadPool pool(3);
  const auto batched =
      model.forward_batch(tiny_dataset().samples(), tiny_scaler(), &pool);
  ASSERT_EQ(batched.size(), tiny_dataset().size());
  const nn::NoGradGuard guard;
  for (std::size_t i = 0; i < tiny_dataset().size(); ++i) {
    const nn::Tensor direct =
        model.forward(tiny_dataset()[i], tiny_scaler()).value();
    ASSERT_TRUE(batched[i].same_shape(direct));
    for (std::size_t j = 0; j < direct.size(); ++j)
      EXPECT_EQ(batched[i].flat()[j], direct.flat()[j]);
  }
}

TEST(ParallelTrainer, EvaluateLossAgreesAcrossThreadCounts) {
  core::ExtendedRouteNet model(small_model_config());
  core::TrainConfig tc;
  tc.min_delivered = 1;
  tc.verbose = false;
  tc.threads = 1;
  const core::Trainer serial(model, tc);
  tc.threads = 4;
  const core::Trainer parallel(model, tc);
  const double a = serial.evaluate_loss(tiny_dataset(), tiny_scaler());
  const double b = parallel.evaluate_loss(tiny_dataset(), tiny_scaler());
  EXPECT_EQ(a, b);
}

}  // namespace
