// Exhaustive corruption sweeps over the integrity-checked on-disk
// formats (DESIGN.md §R): model bundles (.rnxb) and shard manifests
// (.rnxm).  Every truncation point and a bit flip in every 64-byte
// window must surface as the format's TYPED load error — never a crash,
// a hang, a huge allocation, or a silently wrong object.  Checkpoint
// (.rnxc) corruption is swept in checkpoint_test.cpp.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "data/dataset.hpp"
#include "data/generator.hpp"
#include "data/shards.hpp"
#include "serve/bundle.hpp"
#include "topo/zoo.hpp"
#include "util/log.hpp"

namespace {

using namespace rnx;
namespace fs = std::filesystem;

std::vector<char> read_file(const fs::path& p) {
  std::ifstream f(p, std::ios::binary);
  return {std::istreambuf_iterator<char>(f), std::istreambuf_iterator<char>()};
}

void write_file(const fs::path& p, const std::vector<char>& bytes) {
  std::ofstream f(p, std::ios::binary | std::ios::trunc);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Truncation points: every header edge, the tail, and an even stride
/// through the body — capped so the sweep stays fast on big artifacts.
std::set<std::size_t> truncation_points(std::size_t size) {
  std::set<std::size_t> pts = {0, 1, 3, 4, 5, 7, 8, 15, 16, 23, 24};
  const std::size_t stride = std::max<std::size_t>(1, size / 128);
  for (std::size_t n = 0; n < size; n += stride) pts.insert(n);
  pts.insert(size - 1);
  pts.erase(size);  // keep strictly-truncated lengths only
  std::set<std::size_t> in_range;
  for (const std::size_t n : pts)
    if (n < size) in_range.insert(n);
  return in_range;
}

class CorruptionSweepTest : public ::testing::Test {
 protected:
  CorruptionSweepTest() {
    util::set_log_level(util::LogLevel::kWarn);
    dir_ = fs::temp_directory_path() /
           ("rnx_corrupt." + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);

    data::GeneratorConfig gen;
    gen.target_packets = 2'000;
    ds_ = std::make_unique<data::Dataset>(
        data::generate_dataset(topo::ring(4), 2, gen, 11));

    core::ModelConfig mc;
    mc.state_dim = 4;
    mc.readout_hidden = 6;
    mc.iterations = 1;
    mc.init_seed = 3;
    const auto model = core::make_model(core::ModelKind::kExtended, mc);
    serve::save_bundle(bundle_path().string(), *model,
                       data::Scaler::fit(ds_->samples(), 1),
                       core::PredictionTarget::kDelay, 1);

    data::ShardWriter writer(manifest_path().string(), 1, 11,
                             data::config_digest(gen));
    for (const auto& s : ds_->samples()) writer.add(s);
    (void)writer.finish();
  }
  ~CorruptionSweepTest() override { fs::remove_all(dir_); }

  [[nodiscard]] fs::path bundle_path() const { return dir_ / "m.rnxb"; }
  [[nodiscard]] fs::path manifest_path() const { return dir_ / "s.rnxm"; }

  fs::path dir_;
  std::unique_ptr<data::Dataset> ds_;
};

TEST_F(CorruptionSweepTest, BundleTruncationAtEveryPointIsTyped) {
  const std::vector<char> pristine = read_file(bundle_path());
  ASSERT_GT(pristine.size(), 24u);  // more than just the header
  const fs::path victim = dir_ / "trunc.rnxb";
  std::size_t attempts = 0;
  for (const std::size_t len : truncation_points(pristine.size())) {
    write_file(victim, {pristine.begin(),
                        pristine.begin() + static_cast<std::ptrdiff_t>(len)});
    EXPECT_THROW((void)serve::load_bundle(victim.string()),
                 std::runtime_error)
        << "truncated to " << len << " of " << pristine.size() << " bytes";
    ++attempts;
  }
  EXPECT_GE(attempts, 32u);
  // The pristine file still loads — the sweep proved detection, not rot.
  EXPECT_NO_THROW((void)serve::load_bundle(bundle_path().string()));
}

TEST_F(CorruptionSweepTest, BundleBitFlipInEveryWindowIsTyped) {
  const std::vector<char> pristine = read_file(bundle_path());
  const fs::path victim = dir_ / "flip.rnxb";
  std::size_t attempts = 0;
  for (std::size_t w = 0; w < pristine.size(); w += 64) {
    // One flipped bit per 64-byte window, walking byte offset and bit
    // position so header fields, length fields, checksum and body all
    // get hit across the sweep.
    const std::size_t byte =
        std::min(w + (w / 64) % 64, pristine.size() - 1);
    std::vector<char> mutated = pristine;
    mutated[byte] = static_cast<char>(
        static_cast<unsigned char>(mutated[byte]) ^ (1u << ((w / 64) % 8)));
    write_file(victim, mutated);
    EXPECT_THROW((void)serve::load_bundle(victim.string()),
                 std::runtime_error)
        << "bit flip at byte " << byte;
    ++attempts;
  }
  EXPECT_GE(attempts, 8u);
  EXPECT_NO_THROW((void)serve::load_bundle(bundle_path().string()));
}

TEST_F(CorruptionSweepTest, ManifestTruncationAtEveryPointIsTyped) {
  const std::vector<char> pristine = read_file(manifest_path());
  ASSERT_GT(pristine.size(), 24u);
  // Corrupt the real manifest in place (shards stay next to it, so a
  // survivor-parse would find them); restore after the sweep.
  for (const std::size_t len : truncation_points(pristine.size())) {
    write_file(manifest_path(),
               {pristine.begin(),
                pristine.begin() + static_cast<std::ptrdiff_t>(len)});
    EXPECT_THROW(data::ShardedReader r(manifest_path().string()),
                 data::ManifestError)
        << "truncated to " << len << " of " << pristine.size() << " bytes";
  }
  write_file(manifest_path(), pristine);
  EXPECT_EQ(data::ShardedReader(manifest_path().string()).total_samples(),
            2u);
}

TEST_F(CorruptionSweepTest, ManifestBitFlipInEveryWindowIsTyped) {
  const std::vector<char> pristine = read_file(manifest_path());
  for (std::size_t w = 0; w < pristine.size(); w += 16) {
    // Manifests are small: flip densely, one bit per 16-byte window.
    const std::size_t byte =
        std::min(w + (w / 16) % 16, pristine.size() - 1);
    std::vector<char> mutated = pristine;
    mutated[byte] = static_cast<char>(
        static_cast<unsigned char>(mutated[byte]) ^ (1u << ((w / 16) % 8)));
    write_file(manifest_path(), mutated);
    EXPECT_THROW(data::ShardedReader r(manifest_path().string()),
                 data::ManifestError)
        << "bit flip at byte " << byte;
  }
  write_file(manifest_path(), pristine);
  EXPECT_EQ(data::ShardedReader(manifest_path().string()).load_all().size(),
            2u);
}

}  // namespace
