// rnx_lint rule contract (DESIGN.md §L): every rule has a trigger, a
// non-trigger, and an allow-escape fixture; the real tree must lint
// clean (that IS the invariant the tool exists to hold); and the CLI's
// exit codes follow the tool doctrine (0 clean / 1 violations /
// 2 usage).  Fixtures live in string literals — which doubles as a
// standing test of the scrubber, since this file is itself linted.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "../tools/lint/linter.hpp"

namespace {

namespace fs = std::filesystem;
using rnx::lint::lint_cmake;
using rnx::lint::lint_file;
using rnx::lint::lint_tree;
using rnx::lint::rule_ids;
using rnx::lint::scrub;
using rnx::lint::Violation;

[[nodiscard]] std::vector<std::string> rules_of(
    const std::vector<Violation>& vs) {
  std::vector<std::string> out;
  out.reserve(vs.size());
  for (const auto& v : vs) out.push_back(v.rule);
  return out;
}

[[nodiscard]] bool has_rule(const std::vector<Violation>& vs,
                            const std::string& rule) {
  for (const auto& v : vs)
    if (v.rule == rule) return true;
  return false;
}

[[nodiscard]] std::string render(const std::vector<Violation>& vs) {
  std::ostringstream ss;
  for (const auto& v : vs)
    ss << v.file << ":" << v.line << ": " << v.rule << ": " << v.message
       << "\n";
  return ss.str();
}

// ---- scrubber --------------------------------------------------------------

TEST(LintScrub, BlanksCommentsAndStringsPreservingShape) {
  const std::string in =
      "int a; // std::mutex here\n"
      "const char* s = \"std::mutex too\";\n"
      "/* std::mutex\n   spanning lines */ int b;\n";
  const std::string out = scrub(in);
  EXPECT_EQ(out.size(), in.size());
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'),
            std::count(in.begin(), in.end(), '\n'));
  EXPECT_EQ(out.find("std::mutex"), std::string::npos);
  EXPECT_NE(out.find("int a;"), std::string::npos);
  EXPECT_NE(out.find("int b;"), std::string::npos);
}

TEST(LintScrub, BlanksRawStringsAndEscapes) {
  const std::string in =
      "auto r = R\"(std::mutex raw)\";\n"
      "auto q = \"esc \\\" std::mutex\";\n"
      "char c = '\\'';\n"
      "int sep = 1'000'000;\n";
  const std::string out = scrub(in);
  EXPECT_EQ(out.find("std::mutex"), std::string::npos);
  // Digit separators are not char literals: the declaration survives.
  EXPECT_NE(out.find("int sep = 1'000'000;"), std::string::npos);
}

// ---- raw-mutex -------------------------------------------------------------

TEST(LintRawMutex, FlagsEveryRawPrimitive) {
  for (const char* bad :
       {"std::mutex m;", "std::lock_guard<std::mutex> l(m);",
        "std::unique_lock<std::mutex> l(m);", "std::scoped_lock l(m);",
        "std::shared_mutex sm;", "std::condition_variable cv;",
        "std::condition_variable_any cv;"}) {
    const auto vs = lint_file("src/x.cpp", bad);
    EXPECT_TRUE(has_rule(vs, "raw-mutex")) << bad << "\n" << render(vs);
  }
}

TEST(LintRawMutex, WrappersAndProseAreClean) {
  const std::string ok =
      "util::Mutex mu_ ;\n"
      "int x_ RNX_GUARDED_BY(mu_);\n"
      "// comment naming std::mutex\n"
      "const char* s = \"std::lock_guard\";\n";
  EXPECT_FALSE(has_rule(lint_file("src/x.cpp", ok), "raw-mutex"));
}

TEST(LintRawMutex, AppliesToTestsAndBenchScopes) {
  EXPECT_TRUE(has_rule(lint_file("tests/t.cpp", "std::mutex m;"),
                       "raw-mutex"));
  EXPECT_TRUE(has_rule(lint_file("bench/b.cpp", "std::mutex m;"),
                       "raw-mutex"));
}

TEST(LintRawMutex, WrapperFileIsExempt) {
  EXPECT_FALSE(has_rule(lint_file("src/util/mutex.hpp", "std::mutex mu_;"),
                        "raw-mutex"));
}

TEST(LintRawMutex, AllowOnSameLineAndLineAbove) {
  const std::string same =
      "std::mutex m;  // rnx-lint: allow(raw-mutex) reason\n";
  const std::string above =
      "// rnx-lint: allow(raw-mutex) — ffi boundary\nstd::mutex m;\n";
  const std::string wrong_rule =
      "std::mutex m;  // rnx-lint: allow(printf-family)\n";
  EXPECT_FALSE(has_rule(lint_file("src/x.cpp", same), "raw-mutex"));
  EXPECT_FALSE(has_rule(lint_file("src/x.cpp", above), "raw-mutex"));
  EXPECT_TRUE(has_rule(lint_file("src/x.cpp", wrong_rule), "raw-mutex"));
}

// ---- guarded-by ------------------------------------------------------------

TEST(LintGuardedBy, MutexMemberNeedsGuardedField) {
  const std::string bad = "util::Mutex mu_;\nint x_ = 0;\n";
  const std::string good =
      "util::Mutex mu_;\nint x_ RNX_GUARDED_BY(mu_) = 0;\n";
  EXPECT_TRUE(has_rule(lint_file("src/x.hpp", bad), "guarded-by"));
  EXPECT_FALSE(has_rule(lint_file("src/x.hpp", good), "guarded-by"));
}

TEST(LintGuardedBy, PtGuardedCountsAndLocksDoNot) {
  const std::string pt =
      "util::Mutex mu_;\nint* p_ RNX_PT_GUARDED_BY(mu_);\n";
  EXPECT_FALSE(has_rule(lint_file("src/x.hpp", pt), "guarded-by"));
  // MutexLock declarations and Mutex& parameters are not mutex members.
  const std::string locks =
      "void f(util::Mutex& mu) { util::MutexLock lock(mu); }\n";
  EXPECT_FALSE(has_rule(lint_file("src/x.cpp", locks), "guarded-by"));
}

TEST(LintGuardedBy, SrcOnlyAndAllowEscape) {
  const std::string bad = "util::Mutex mu_;\n";
  EXPECT_FALSE(has_rule(lint_file("tools/t.cpp", bad), "guarded-by"));
  const std::string allowed =
      "util::Mutex mu_;  // rnx-lint: allow(guarded-by) serializes only\n";
  EXPECT_FALSE(has_rule(lint_file("src/x.hpp", allowed), "guarded-by"));
}

// ---- unseeded-rng ----------------------------------------------------------

TEST(LintRng, FlagsHiddenStateGenerators) {
  EXPECT_TRUE(has_rule(lint_file("src/x.cpp", "int r = rand();"),
                       "unseeded-rng"));
  EXPECT_TRUE(has_rule(lint_file("src/x.cpp", "srand(42);"), "unseeded-rng"));
  EXPECT_TRUE(has_rule(lint_file("src/x.cpp", "int r = std::rand();"),
                       "unseeded-rng"));
  EXPECT_TRUE(has_rule(lint_file("tools/t.cpp", "std::random_device rd;"),
                       "unseeded-rng"));
}

TEST(LintRng, SimilarIdentifiersAndTestScopeAreClean) {
  const std::string ok =
      "int operand = 3;\n"
      "double brand(int);\n"
      "int randomize_all(int);\n"
      "auto rng = util::RngStream(seed);\n";
  EXPECT_FALSE(has_rule(lint_file("src/x.cpp", ok), "unseeded-rng"));
  // tests/ and bench/ may use whatever randomness they like.
  EXPECT_FALSE(has_rule(lint_file("tests/t.cpp", "int r = rand();"),
                        "unseeded-rng"));
}

// ---- swallowed-catch -------------------------------------------------------

TEST(LintCatch, FlagsSilentCatchAll) {
  const std::string bad = "void f() { try { g(); } catch (...) {} }\n";
  const auto vs = lint_file("src/x.cpp", bad);
  EXPECT_TRUE(has_rule(vs, "swallowed-catch")) << render(vs);
}

TEST(LintCatch, HandledCatchAllAndTypedCatchAreClean) {
  for (const char* ok :
       {"void f() { try { g(); } catch (...) { throw; } }",
        "void f() { try { g(); } catch (...) { err = "
        "std::current_exception(); } }",
        "void f() { try { g(); } catch (...) { log_error(\"boom\"); } }",
        "void f() { try { g(); } catch (...) { std::abort(); } }",
        "void f() { try { g(); } catch (const std::exception& e) {} }"}) {
    const auto vs = lint_file("src/x.cpp", ok);
    EXPECT_FALSE(has_rule(vs, "swallowed-catch")) << ok << "\n" << render(vs);
  }
}

TEST(LintCatch, ScansNestedBracesAndReportsCatchLine) {
  const std::string bad =
      "void f() {\n"
      "  try { g(); }\n"
      "  catch (...) {\n"
      "    if (x) { y(); }\n"
      "  }\n"
      "}\n";
  const auto vs = lint_file("src/x.cpp", bad);
  ASSERT_TRUE(has_rule(vs, "swallowed-catch")) << render(vs);
  EXPECT_EQ(vs.front().line, 3);
}

// ---- printf-family ---------------------------------------------------------

TEST(LintPrintf, FlagsFormattedOutputInSrcOnly) {
  EXPECT_TRUE(has_rule(lint_file("src/x.cpp", "printf(\"%d\", 1);"),
                       "printf-family"));
  EXPECT_TRUE(
      has_rule(lint_file("src/x.cpp", "std::fprintf(stderr, \"x\");"),
               "printf-family"));
  // tools format their own stdout; fwrite is byte IO, not formatting.
  EXPECT_FALSE(has_rule(lint_file("tools/t.cpp", "printf(\"%d\", 1);"),
                        "printf-family"));
  EXPECT_FALSE(has_rule(lint_file("src/x.cpp", "fwrite(p, 1, n, f);"),
                        "printf-family"));
  EXPECT_FALSE(has_rule(lint_file("src/x.cpp", "my_printf_like(x);"),
                        "printf-family"));
}

// ---- banned-include --------------------------------------------------------

TEST(LintInclude, FlagsCHeadersAndRegexTreeWide) {
  for (const char* rel : {"src/x.cpp", "tools/t.cpp", "tests/t.cpp",
                          "bench/b.cpp"}) {
    const auto vs = lint_file(rel, "#include <stdio.h>\n");
    EXPECT_TRUE(has_rule(vs, "banned-include")) << rel;
  }
  EXPECT_TRUE(has_rule(lint_file("src/x.cpp", "#include <regex>\n"),
                       "banned-include"));
  EXPECT_TRUE(has_rule(lint_file("src/x.cpp", "  #  include <math.h>\n"),
                       "banned-include"));
}

TEST(LintInclude, ModernHeadersAndLookalikesAreClean) {
  const std::string ok =
      "#include <cstdio>\n"
      "#include <string>\n"
      "#include <cmath>\n"
      "// #include <stdio.h> (commented out)\n";
  EXPECT_FALSE(has_rule(lint_file("src/x.cpp", ok), "banned-include"));
}

// ---- fp-contract (CMake cross-check) ---------------------------------------

TEST(LintFpContract, EveryKernelTuMustCarryTheFlag) {
  const std::string cmake =
      "set_source_files_properties(src/nn/kernels.cpp PROPERTIES\n"
      "  COMPILE_OPTIONS \"-ffp-contract=off\")\n";
  EXPECT_TRUE(lint_cmake(cmake, {"src/nn/kernels.cpp"}).empty());
  const auto vs =
      lint_cmake(cmake, {"src/nn/kernels.cpp", "src/nn/kernels_new.cpp"});
  ASSERT_EQ(vs.size(), 1u) << render(vs);
  EXPECT_EQ(vs.front().rule, "fp-contract");
  EXPECT_NE(vs.front().message.find("kernels_new"), std::string::npos);
}

TEST(LintFpContract, CommentedCoverageDoesNotCount) {
  const std::string cmake =
      "# set_source_files_properties(src/nn/kernels.cpp PROPERTIES\n"
      "#   COMPILE_OPTIONS \"-ffp-contract=off\")\n"
      "add_library(rnx src/nn/kernels.cpp)\n";
  EXPECT_TRUE(has_rule(lint_cmake(cmake, {"src/nn/kernels.cpp"}),
                       "fp-contract"));
}

TEST(LintFpContract, FlagWithoutTheTuDoesNotCover) {
  const std::string cmake =
      "set_source_files_properties(src/nn/other.cpp PROPERTIES\n"
      "  COMPILE_OPTIONS \"-ffp-contract=off\")\n";
  EXPECT_TRUE(has_rule(lint_cmake(cmake, {"src/nn/kernels.cpp"}),
                       "fp-contract"));
}

// ---- rule inventory --------------------------------------------------------

TEST(LintRules, EveryEmittedRuleIsListed) {
  const std::string everything =
      "#include <stdio.h>\n"
      "std::mutex m;\n"
      "util::Mutex mu_;\n"
      "int r = rand();\n"
      "void f() { try { g(); } catch (...) {} }\n"
      "void h() { printf(\"x\"); }\n";
  const auto vs = lint_file("src/x.cpp", everything);
  const auto& ids = rule_ids();
  for (const auto& rule : rules_of(vs))
    EXPECT_NE(std::find(ids.begin(), ids.end(), rule), ids.end()) << rule;
  // Six of the seven rules are file rules; all fire here, one per line.
  EXPECT_EQ(vs.size(), 6u) << render(vs);
}

// ---- the real tree ---------------------------------------------------------

// The acceptance invariant: the repo lints clean.  A failure here names
// the offending line — fix it or add an allow-comment with a reason.
TEST(LintTree, RealTreeIsClean) {
  const auto vs = lint_tree(RNX_LINT_SOURCE_DIR);
  EXPECT_TRUE(vs.empty()) << render(vs);
}

// ---- CLI exit-code contract ------------------------------------------------

class LintCliTree : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "rnx_lint_cli_tree";
    fs::remove_all(dir_);
    fs::create_directories(dir_ / "src");
    write("CMakeLists.txt", "add_library(x src/a.cpp)\n");
    write("src/a.cpp", "int ok = 1;\n");
  }
  void TearDown() override { fs::remove_all(dir_); }

  void write(const std::string& rel, const std::string& content) {
    std::ofstream out(dir_ / rel);
    out << content;
  }

  [[nodiscard]] int run_cli(const std::vector<std::string>& args) {
    out_.str("");
    err_.str("");
    return rnx::lint::run(args, out_, err_);
  }

  fs::path dir_;
  std::ostringstream out_;
  std::ostringstream err_;
};

TEST_F(LintCliTree, CleanTreeExitsZero) {
  EXPECT_EQ(run_cli({dir_.string()}), 0);
  EXPECT_EQ(out_.str(), "");
}

TEST_F(LintCliTree, ViolationsExitOneAndPrintFileLineRule) {
  write("src/bad.cpp", "std::mutex m;\n");
  EXPECT_EQ(run_cli({dir_.string()}), 1);
  EXPECT_NE(out_.str().find("src/bad.cpp:1: raw-mutex:"), std::string::npos)
      << out_.str();
}

TEST_F(LintCliTree, UsageErrorsExitTwo) {
  EXPECT_EQ(run_cli({"--bogus"}), 2);
  EXPECT_EQ(run_cli({dir_.string(), "second-root"}), 2);
  EXPECT_EQ(run_cli({(dir_ / "no-such-dir").string()}), 2);
}

TEST_F(LintCliTree, ListRulesPrintsTheInventory) {
  EXPECT_EQ(run_cli({"--list-rules"}), 0);
  for (const auto& id : rule_ids())
    EXPECT_NE(out_.str().find(id), std::string::npos) << id;
}

}  // namespace
