// Closed-form M/M/1(/K) identities — the analytic yardstick the simulator
// is validated against (sim_test.cpp).
#include <gtest/gtest.h>

#include "sim/mm1k.hpp"

namespace {

using namespace rnx::sim;

TEST(Mm1, SojournMatchesTextbook) {
  // lambda=0.5, mu=1 -> W = 1/(mu-lambda) = 2.
  EXPECT_NEAR(mm1_mean_sojourn(0.5, 1.0), 2.0, 1e-12);
  EXPECT_NEAR(mm1_mean_sojourn(8.0, 10.0), 0.5, 1e-12);
}

TEST(Mm1, UnstableThrows) {
  EXPECT_THROW((void)mm1_mean_sojourn(1.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)mm1_mean_sojourn(2.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)mm1_mean_sojourn(1.0, 0.0), std::invalid_argument);
}

TEST(Mm1k, ProbabilitiesSumToOne) {
  for (const double rho : {0.3, 0.8, 1.0, 1.5}) {
    for (const std::uint32_t k : {1u, 2u, 8u, 32u}) {
      double sum = 0.0;
      for (std::uint32_t n = 0; n <= k; ++n)
        sum += mm1k_prob_n(rho, 1.0, k, n);
      EXPECT_NEAR(sum, 1.0, 1e-12) << "rho=" << rho << " k=" << k;
    }
  }
}

TEST(Mm1k, ProbBeyondCapacityIsZero) {
  EXPECT_DOUBLE_EQ(mm1k_prob_n(0.5, 1.0, 4, 5), 0.0);
}

TEST(Mm1k, RhoOneIsUniform) {
  for (std::uint32_t n = 0; n <= 4; ++n)
    EXPECT_NEAR(mm1k_prob_n(1.0, 1.0, 4, n), 0.2, 1e-12);
  EXPECT_NEAR(mm1k_mean_system(1.0, 1.0, 4), 2.0, 1e-12);
}

TEST(Mm1k, K1IsErlangBlocking) {
  // K=1: P_block = rho/(1+rho); mean sojourn of accepted = service time.
  const double lambda = 2.0, mu = 4.0;
  EXPECT_NEAR(mm1k_blocking(lambda, mu, 1), 0.5 / 1.5, 1e-12);
  EXPECT_NEAR(mm1k_mean_sojourn(lambda, mu, 1), 1.0 / mu, 1e-12);
}

TEST(Mm1k, BlockingIncreasesWithLoad) {
  double prev = 0.0;
  for (const double lambda : {0.2, 0.5, 0.9, 1.4, 2.0}) {
    const double b = mm1k_blocking(lambda, 1.0, 8);
    EXPECT_GT(b, prev);
    prev = b;
  }
}

TEST(Mm1k, BlockingDecreasesWithCapacity) {
  double prev = 1.0;
  for (const std::uint32_t k : {1u, 2u, 4u, 16u, 64u}) {
    const double b = mm1k_blocking(0.8, 1.0, k);
    EXPECT_LT(b, prev);
    prev = b;
  }
}

TEST(Mm1k, ConvergesToMm1ForLargeK) {
  const double lambda = 0.7, mu = 1.0;
  EXPECT_NEAR(mm1k_mean_sojourn(lambda, mu, 500),
              mm1_mean_sojourn(lambda, mu), 1e-9);
  EXPECT_NEAR(mm1k_blocking(lambda, mu, 500), 0.0, 1e-12);
}

TEST(Mm1k, UtilizationIsEffectiveLoad) {
  const double lambda = 2.0, mu = 1.0;  // overloaded, K=4
  const double util = mm1k_utilization(lambda, mu, 4);
  EXPECT_GT(util, 0.9);
  EXPECT_LT(util, 1.0);  // server can never exceed 1
  EXPECT_NEAR(util, lambda * (1.0 - mm1k_blocking(lambda, mu, 4)) / mu,
              1e-12);
}

TEST(Mm1k, ZeroArrivalsEdgeCases) {
  EXPECT_NEAR(mm1k_blocking(0.0, 1.0, 4), 0.0, 1e-12);
  EXPECT_NEAR(mm1k_mean_sojourn(0.0, 2.0, 4), 0.5, 1e-12);  // pure service
}

TEST(Mm1k, InvalidArgumentsThrow) {
  EXPECT_THROW((void)mm1k_blocking(1.0, 0.0, 4), std::invalid_argument);
  EXPECT_THROW((void)mm1k_blocking(-1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW((void)mm1k_blocking(1.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW((void)mm1k_mean_system(1.0, 1.0, 0), std::invalid_argument);
}

// Little's law consistency: N = lambda_eff * W.
class LittleLaw : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(LittleLaw, HoldsAcrossRegimes) {
  const double rho = std::get<0>(GetParam());
  const auto k = static_cast<std::uint32_t>(std::get<1>(GetParam()));
  const double mu = 1.0, lambda = rho * mu;
  const double lam_eff = lambda * (1.0 - mm1k_blocking(lambda, mu, k));
  EXPECT_NEAR(mm1k_mean_system(lambda, mu, k),
              lam_eff * mm1k_mean_sojourn(lambda, mu, k), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, LittleLaw,
    ::testing::Combine(::testing::Values(0.2, 0.6, 0.9, 0.99, 1.3),
                       ::testing::Values(1, 2, 8, 32)));

}  // namespace
