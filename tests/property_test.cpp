// Cross-module property tests: invariances that must hold by
// construction, checked on randomized instances.
//
//  * GNN relabelling equivariance: renaming node ids (and permuting all
//    attribute arrays consistently) must permute predictions, nothing
//    else — the defining property of a graph neural network.
//  * Simulator scale invariance: multiplying all capacities and rates by
//    the same factor divides delays by that factor and preserves loss.
//  * Routing determinism under weight permutation consistency.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/routenet.hpp"
#include "core/routenet_ext.hpp"
#include "core/trainer.hpp"
#include "data/dataset.hpp"
#include "data/generator.hpp"
#include "sim/simulator.hpp"
#include "topo/traffic.hpp"
#include "topo/zoo.hpp"

namespace {

using namespace rnx;

// Apply a node relabelling perm (new_id = perm[old_id]) to a sample.
// Link ids keep their order; only endpoints and per-node arrays move.
data::Sample relabel(const data::Sample& s,
                     const std::vector<topo::NodeId>& perm) {
  data::Sample out = s;
  for (auto& l : out.links) {
    l.src = perm[l.src];
    l.dst = perm[l.dst];
  }
  for (topo::NodeId n = 0; n < s.num_nodes; ++n)
    out.queue_pkts[perm[n]] = s.queue_pkts[n];
  for (auto& p : out.paths) {
    p.src = perm[p.src];
    p.dst = perm[p.dst];
    for (auto& n : p.nodes) n = perm[n];
  }
  return out;
}

class RelabelProperty : public ::testing::TestWithParam<int> {};

TEST_P(RelabelProperty, PredictionsAreEquivariant) {
  data::GeneratorConfig cfg;
  cfg.target_packets = 5'000;
  util::RngStream rng(static_cast<std::uint64_t>(GetParam()));
  const data::Sample s = data::generate_sample(topo::ring(6), cfg, rng);
  const data::Scaler sc = data::Scaler::fit({&s, 1}, 1);

  // Random permutation of node ids.
  std::vector<topo::NodeId> perm(s.num_nodes);
  for (topo::NodeId n = 0; n < s.num_nodes; ++n) perm[n] = n;
  for (std::size_t i = perm.size(); i > 1; --i)
    std::swap(perm[i - 1], perm[static_cast<std::size_t>(
                               rng.uniform_int(0, static_cast<std::int64_t>(i) - 1))]);
  const data::Sample r = relabel(s, perm);
  r.validate();

  core::ModelConfig mc;
  mc.state_dim = 8;
  mc.iterations = 2;
  const nn::NoGradGuard guard;
  for (const bool extended : {false, true}) {
    std::unique_ptr<core::Model> m;
    if (extended)
      m = std::make_unique<core::ExtendedRouteNet>(mc);
    else
      m = std::make_unique<core::RouteNet>(mc);
    const nn::Var a = m->forward(s, sc);
    const nn::Var b = m->forward(r, sc);
    // Path records keep their order under relabelling, so predictions
    // must match row for row (to FP round-off).
    ASSERT_EQ(a.rows(), b.rows());
    for (std::size_t i = 0; i < a.rows(); ++i)
      EXPECT_NEAR(a.value()(i, 0), b.value()(i, 0), 1e-9)
          << (extended ? "ext" : "orig") << " path " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RelabelProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

class SimScaleProperty : public ::testing::TestWithParam<double> {};

TEST_P(SimScaleProperty, TimeRescalingInvariance) {
  // Speeding every link and every flow up by factor f is a pure change
  // of time units: delays shrink by f, loss and utilization unchanged
  // (statistically; we use the same seed so packet *counts* match
  // exactly and delays match up to FP error).
  const double f = GetParam();
  auto run = [&](double factor) {
    topo::Topology t = topo::line(3, 1e6 * factor);
    t.set_queue_size(1, 4);
    const topo::RoutingScheme rs = topo::hop_count_routing(t);
    topo::TrafficMatrix tm(3);
    tm.set(0, 2, 0.9e6 * factor);
    sim::SimConfig cfg;
    cfg.window_s = 40.0 / factor;
    cfg.warmup_s = 2.0 / factor;
    cfg.seed = 9;
    sim::Simulator s(t, rs, tm, cfg);
    return s.run();
  };
  const sim::SimResult base = run(1.0);
  const sim::SimResult fast = run(f);
  const auto& pb = base.path(0, 2);
  const auto& pf = fast.path(0, 2);
  EXPECT_EQ(pb.generated, pf.generated);
  EXPECT_EQ(pb.dropped, pf.dropped);
  EXPECT_NEAR(pf.mean_delay_s * f, pb.mean_delay_s,
              1e-9 * pb.mean_delay_s);
}

INSTANTIATE_TEST_SUITE_P(Factors, SimScaleProperty,
                         ::testing::Values(2.0, 8.0, 64.0));

TEST(TrafficScaleProperty, PredictionsChangeMonotonicallyWithLoad) {
  // Not exact math, but a sanity property the trained model must show:
  // scaling all traffic up never *decreases* the average predicted
  // delay by much after a little training.  Here we only check the
  // untrained model is at least sensitive, and a trained one moves the
  // right way on average.
  data::GeneratorConfig cfg;
  cfg.target_packets = 12'000;
  // All-standard queues: with drop-tail 1-packet queues, more load can
  // legitimately *lower* the mean delay of delivered packets, so the
  // monotone ground truth only exists in the lossless-ish regime.
  cfg.randomize_queues = false;
  data::Dataset ds(data::generate_dataset(topo::ring(5), 10, cfg, 31));
  const data::Scaler sc = data::Scaler::fit(ds.samples());
  core::ModelConfig mc;
  mc.state_dim = 8;
  mc.iterations = 2;
  core::ExtendedRouteNet m(mc);
  core::TrainConfig tc;
  tc.epochs = 15;
  tc.batch_samples = 2;
  tc.lr = 3e-3;
  tc.verbose = false;
  core::Trainer(m, tc).fit(ds, sc);

  const nn::NoGradGuard guard;
  data::Sample heavy = ds[0];
  for (auto& p : heavy.paths) p.traffic_bps *= 3.0;
  const nn::Var a = m.forward(ds[0], sc);
  const nn::Var b = m.forward(heavy, sc);
  double mean_a = 0.0, mean_b = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    mean_a += sc.target_to_delay(a.value()(i, 0));
    mean_b += sc.target_to_delay(b.value()(i, 0));
  }
  EXPECT_GT(mean_b, mean_a);  // more load -> more predicted delay
}

TEST(DatasetOrderProperty, ShuffleDoesNotChangeFittedScaler) {
  data::GeneratorConfig cfg;
  cfg.target_packets = 5'000;
  data::Dataset ds(data::generate_dataset(topo::ring(4), 6, cfg, 17));
  const data::Scaler before = data::Scaler::fit(ds.samples());
  util::RngStream rng(5);
  ds.shuffle(rng);
  const data::Scaler after = data::Scaler::fit(ds.samples());
  EXPECT_DOUBLE_EQ(before.traffic_moments().mean,
                   after.traffic_moments().mean);
  EXPECT_DOUBLE_EQ(before.log_delay_moments().stddev,
                   after.log_delay_moments().stddev);
}

}  // namespace
