// Tests for src/eval: metric math on synthetic prediction sets and the
// prediction pooling helper.
#include <gtest/gtest.h>

#include <cmath>

#include "core/plan.hpp"
#include "core/routenet_ext.hpp"
#include "data/generator.hpp"
#include "eval/metrics.hpp"
#include "topo/zoo.hpp"

namespace {

using namespace rnx;
using eval::PairedPredictions;

TEST(Metrics, RelativeErrorsSignedAndAbsolute) {
  PairedPredictions pp;
  pp.truth = {1.0, 2.0, 4.0};
  pp.pred = {1.1, 1.0, 4.0};
  const auto rel = eval::relative_errors(pp);
  ASSERT_EQ(rel.size(), 3u);
  EXPECT_NEAR(rel[0], 0.1, 1e-12);
  EXPECT_NEAR(rel[1], -0.5, 1e-12);
  EXPECT_NEAR(rel[2], 0.0, 1e-12);
  const auto ape = eval::absolute_relative_errors(pp);
  EXPECT_NEAR(ape[1], 0.5, 1e-12);
}

TEST(Metrics, RelativeErrorsRejectNonPositiveTruth) {
  PairedPredictions pp;
  pp.truth = {0.0};
  pp.pred = {1.0};
  EXPECT_THROW(eval::relative_errors(pp), std::logic_error);
}

TEST(Metrics, SummaryOnPerfectPredictions) {
  PairedPredictions pp;
  pp.truth = {1.0, 2.0, 3.0, 4.0};
  pp.pred = pp.truth;
  const auto s = eval::summarize(pp);
  EXPECT_EQ(s.n, 4u);
  EXPECT_DOUBLE_EQ(s.mae, 0.0);
  EXPECT_DOUBLE_EQ(s.rmse, 0.0);
  EXPECT_DOUBLE_EQ(s.mape, 0.0);
  EXPECT_NEAR(s.r2, 1.0, 1e-12);
  EXPECT_NEAR(s.pearson, 1.0, 1e-12);
}

TEST(Metrics, SummaryHandComputed) {
  PairedPredictions pp;
  pp.truth = {1.0, 2.0};
  pp.pred = {1.5, 1.5};
  const auto s = eval::summarize(pp);
  EXPECT_NEAR(s.mae, 0.5, 1e-12);
  EXPECT_NEAR(s.rmse, 0.5, 1e-12);
  EXPECT_NEAR(s.mape, (0.5 + 0.25) / 2, 1e-12);
  // SS_res = 0.5, SS_tot = 0.5 -> r2 = 0.
  EXPECT_NEAR(s.r2, 0.0, 1e-12);
}

TEST(Metrics, AnticorrelatedPredictions) {
  PairedPredictions pp;
  pp.truth = {1.0, 2.0, 3.0};
  pp.pred = {3.0, 2.0, 1.0};
  const auto s = eval::summarize(pp);
  EXPECT_NEAR(s.pearson, -1.0, 1e-12);
  EXPECT_LT(s.r2, 0.0);  // worse than the mean predictor
}

TEST(Metrics, EmptySetThrows) {
  EXPECT_THROW((void)eval::summarize(PairedPredictions{}), std::invalid_argument);
}

TEST(PredictDataset, PoolsOnlyValidPathsAndDenormalizes) {
  data::GeneratorConfig cfg;
  cfg.target_packets = 8'000;
  const data::Dataset ds(
      data::generate_dataset(topo::ring(5), 3, cfg, 21));
  const data::Scaler sc = data::Scaler::fit(ds.samples());
  core::ModelConfig mc;
  mc.state_dim = 8;
  mc.iterations = 2;
  const core::ExtendedRouteNet m(mc);

  const auto pp = eval::predict_dataset(m, ds, sc, 10);
  std::size_t expected = 0;
  for (const auto& s : ds.samples())
    expected += core::valid_label_rows(s, 10).size();
  EXPECT_EQ(pp.size(), expected);
  for (std::size_t i = 0; i < pp.size(); ++i) {
    EXPECT_GT(pp.truth[i], 0.0);
    EXPECT_GT(pp.pred[i], 0.0);  // exp() denormalization: always positive
    EXPECT_LT(pp.pred[i], 10.0);  // sane scale (seconds)
  }
}

TEST(PredictDataset, HigherThresholdPoolsFewer) {
  data::GeneratorConfig cfg;
  cfg.target_packets = 4'000;
  const data::Dataset ds(
      data::generate_dataset(topo::ring(5), 2, cfg, 23));
  const data::Scaler sc = data::Scaler::fit(ds.samples());
  core::ModelConfig mc;
  mc.state_dim = 8;
  mc.iterations = 2;
  const core::ExtendedRouteNet m(mc);
  const auto loose = eval::predict_dataset(m, ds, sc, 1);
  const auto strict = eval::predict_dataset(m, ds, sc, 200);
  EXPECT_GT(loose.size(), strict.size());
}

}  // namespace
