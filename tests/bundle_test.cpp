// Model bundles (.rnxb) and the serving layer: a bundle must carry the
// complete inference contract (weights, scaler moments, config, kind,
// target), reject corruption loudly, and — the deployment bug this
// subsystem fixes — reproduce in-memory predictions bit for bit without
// ever re-fitting a scaler from a dataset.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/routenet_ext.hpp"
#include "data/dataset.hpp"
#include "data/generator.hpp"
#include "serve/inference.hpp"
#include "topo/zoo.hpp"
#include "util/log.hpp"

namespace {

using namespace rnx;

// Small queue-varied dataset: enough simulated packets for stable labels,
// small enough to keep the suite fast.
const data::Dataset& test_dataset() {
  static const data::Dataset ds = [] {
    util::set_log_level(util::LogLevel::kWarn);
    data::GeneratorConfig gen;
    gen.target_packets = 20'000;
    return data::Dataset(data::generate_dataset(topo::nsfnet(), 4, gen, 11));
  }();
  return ds;
}

core::ModelConfig small_config() {
  core::ModelConfig mc;
  mc.state_dim = 8;
  mc.readout_hidden = 12;
  mc.iterations = 2;
  mc.init_seed = 5;
  return mc;
}

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(f), {}};
}
void spit(const std::string& path, const std::string& bytes) {
  std::ofstream f(path, std::ios::binary);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Mirror of the bundle checksum so tests can corrupt a body byte and
// re-seal the header (offsets: magic 4, version 4, size 8, checksum 8).
constexpr std::size_t kBodyOffset = 24;
constexpr std::size_t kChecksumOffset = 16;
std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}
void reseal(std::string& file) {
  const std::uint64_t sum = fnv1a64(std::string_view(file).substr(kBodyOffset));
  for (std::size_t i = 0; i < 8; ++i)
    file[kChecksumOffset + i] = static_cast<char>((sum >> (8 * i)) & 0xFF);
}

struct SavedBundle {
  std::string path;
  core::ExtendedRouteNet model;
  data::Scaler scaler;
};

SavedBundle make_saved_bundle(const std::string& path) {
  const data::Dataset& ds = test_dataset();
  SavedBundle out{path, core::ExtendedRouteNet(small_config()),
                  data::Scaler::fit(ds.samples(), 5)};
  serve::save_bundle(path, out.model, out.scaler,
                     core::PredictionTarget::kDelay, 5);
  return out;
}

TEST(Bundle, RoundTripPreservesEverything) {
  const std::string path = "/tmp/rnx_bundle_roundtrip.rnxb";
  const SavedBundle saved = make_saved_bundle(path);

  const serve::ModelBundle loaded = serve::load_bundle(path);
  ASSERT_TRUE(loaded.model != nullptr);
  EXPECT_EQ(loaded.kind(), core::ModelKind::kExtended);
  EXPECT_EQ(loaded.target, core::PredictionTarget::kDelay);
  EXPECT_EQ(loaded.min_delivered, 5u);

  const core::ModelConfig& mc = loaded.model->config();
  EXPECT_EQ(mc.state_dim, 8u);
  EXPECT_EQ(mc.readout_hidden, 12u);
  EXPECT_EQ(mc.iterations, 2u);
  EXPECT_EQ(mc.init_seed, 5u);

  // Scaler moments: bitwise.
  const auto expect_same = [](const data::Moments& a, const data::Moments& b) {
    EXPECT_EQ(a.mean, b.mean);
    EXPECT_EQ(a.stddev, b.stddev);
  };
  expect_same(loaded.scaler.traffic_moments(),
              saved.scaler.traffic_moments());
  expect_same(loaded.scaler.capacity_moments(),
              saved.scaler.capacity_moments());
  expect_same(loaded.scaler.queue_moments(), saved.scaler.queue_moments());
  expect_same(loaded.scaler.log_delay_moments(),
              saved.scaler.log_delay_moments());
  expect_same(loaded.scaler.log_jitter_moments(),
              saved.scaler.log_jitter_moments());

  // Weights: bitwise.
  const nn::NamedParams pa = saved.model.named_params();
  const nn::NamedParams pb = loaded.model->named_params();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].first, pb[i].first);
    const auto& ta = pa[i].second.value();
    const auto& tb = pb[i].second.value();
    ASSERT_EQ(ta.size(), tb.size());
    for (std::size_t j = 0; j < ta.size(); ++j)
      EXPECT_EQ(ta.flat()[j], tb.flat()[j]);
  }
  std::filesystem::remove(path);
}

// The regression the bundle subsystem exists for: deployment must not
// depend on re-fitting the scaler — bundle-loaded inference equals
// fresh in-memory inference on the training set bit for bit.
TEST(Bundle, LoadedInferenceBitwiseIdenticalToInMemory) {
  const std::string path = "/tmp/rnx_bundle_bitwise.rnxb";
  const SavedBundle saved = make_saved_bundle(path);
  const data::Dataset& ds = test_dataset();

  const serve::InferenceEngine engine(path);
  for (const auto& sample : ds.samples()) {
    const nn::NoGradGuard guard;
    const nn::Tensor direct = saved.model.forward(sample, saved.scaler).value();
    const std::vector<double> served = engine.predict(sample);
    ASSERT_EQ(served.size(), static_cast<std::size_t>(direct.rows()));
    for (std::size_t i = 0; i < served.size(); ++i)
      EXPECT_EQ(served[i], saved.scaler.target_to_delay(direct(i, 0)));
  }
  std::filesystem::remove(path);
}

TEST(Bundle, MissingFileRejected) {
  EXPECT_THROW((void)serve::load_bundle("/tmp/rnx_no_such_bundle.rnxb"),
               std::runtime_error);
}

TEST(Bundle, BadMagicRejected) {
  const std::string path = "/tmp/rnx_bundle_badmagic.rnxb";
  spit(path, "definitely not a bundle file, long enough to have a header");
  try {
    (void)serve::load_bundle(path);
    FAIL() << "bad magic accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos)
        << e.what();
  }
  std::filesystem::remove(path);
}

TEST(Bundle, TruncatedFileRejected) {
  const std::string path = "/tmp/rnx_bundle_truncated.rnxb";
  make_saved_bundle(path);
  std::string bytes = slurp(path);
  bytes.resize(bytes.size() / 2);
  spit(path, bytes);
  EXPECT_THROW((void)serve::load_bundle(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Bundle, ChecksumMismatchRejected) {
  const std::string path = "/tmp/rnx_bundle_bitrot.rnxb";
  make_saved_bundle(path);
  std::string bytes = slurp(path);
  bytes[bytes.size() - 9] ^= 0x40;  // flip one weight bit, keep the header
  spit(path, bytes);
  try {
    (void)serve::load_bundle(path);
    FAIL() << "corrupt body accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos)
        << e.what();
  }
  std::filesystem::remove(path);
}

TEST(Bundle, OversizedBodyRejected) {
  const std::string path = "/tmp/rnx_bundle_hugebody.rnxb";
  make_saved_bundle(path);
  std::string bytes = slurp(path);
  // Claim a ~2^60-byte body: must fail on the bound, not allocate.
  bytes[8] = bytes[9] = bytes[10] = bytes[11] = '\0';
  bytes[12] = bytes[13] = bytes[14] = '\0';
  bytes[15] = 0x10;
  spit(path, bytes);
  EXPECT_THROW((void)serve::load_bundle(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Bundle, WrongModelKindRejected) {
  const std::string path = "/tmp/rnx_bundle_badkind.rnxb";
  make_saved_bundle(path);
  std::string bytes = slurp(path);
  bytes[kBodyOffset] = 7;  // neither orig (0) nor ext (1)
  reseal(bytes);           // keep the checksum valid: kind check must fire
  spit(path, bytes);
  try {
    (void)serve::load_bundle(path);
    FAIL() << "invalid model kind accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("model kind"), std::string::npos)
        << e.what();
  }
  std::filesystem::remove(path);
}

// ---- scenario feature gating (DESIGN.md §S) -----------------------------

// A v2 bundle must round-trip the scenario_features flag.
TEST(Bundle, ScenarioFeatureFlagRoundTrips) {
  const std::string path = "/tmp/rnx_bundle_scenario.rnxb";
  const data::Dataset& ds = test_dataset();
  core::ModelConfig mc = small_config();
  mc.scenario_features = true;  // state_dim 8 >= kScenarioFeatureMinDim
  const core::ExtendedRouteNet model(mc);
  const data::Scaler scaler = data::Scaler::fit(ds.samples(), 5);
  serve::save_bundle(path, model, scaler, core::PredictionTarget::kDelay, 5);
  const serve::ModelBundle loaded = serve::load_bundle(path);
  EXPECT_TRUE(loaded.model->config().scenario_features);
  std::filesystem::remove(path);
}

// A bundle trained with scenario features must refuse — descriptively,
// not as UB or silent zeros — to serve samples that record no scenario.
TEST(Bundle, ScenarioModelRefusesFeaturelessSamples) {
  const std::string path = "/tmp/rnx_bundle_gating.rnxb";
  const data::Dataset& ds = test_dataset();
  core::ModelConfig mc = small_config();
  mc.scenario_features = true;
  const core::ExtendedRouteNet model(mc);
  const data::Scaler scaler = data::Scaler::fit(ds.samples(), 5);
  serve::save_bundle(path, model, scaler, core::PredictionTarget::kDelay, 5);

  const serve::InferenceEngine engine(path);
  data::Sample legacy = ds[0];
  legacy.scenario_recorded = false;  // as loaded from a v1 dataset
  try {
    (void)engine.predict(legacy);
    FAIL() << "feature-less sample accepted by scenario-feature model";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("scenario"), std::string::npos)
        << e.what();
  }
  // Samples that do record a scenario serve fine.
  EXPECT_NO_THROW((void)engine.predict(ds[0]));
  std::filesystem::remove(path);
}

TEST(Bundle, ScenarioFeaturesNeedWideEnoughState) {
  core::ModelConfig mc = small_config();
  mc.state_dim = 3;  // < kScenarioFeatureMinDim
  mc.scenario_features = true;
  EXPECT_THROW(core::ExtendedRouteNet m(mc), std::invalid_argument);
  EXPECT_THROW((void)core::make_model(core::ModelKind::kOriginal, mc),
               std::invalid_argument);
}

// Scenario features change predictions (the channels are really read).
TEST(Bundle, ScenarioFeaturesEnterTheForwardPass) {
  const data::Dataset& ds = test_dataset();
  const data::Scaler scaler = data::Scaler::fit(ds.samples(), 5);
  core::ModelConfig mc = small_config();
  const core::ExtendedRouteNet plain(mc);
  mc.scenario_features = true;
  const core::ExtendedRouteNet featured(mc);

  data::Sample drr = ds[0];
  drr.scenario.policy = rnx::sim::SchedulerPolicy::kDrr;
  const nn::NoGradGuard guard;
  // Same weights, same sample: the policy one-hot must shift outputs...
  const double fifo_pred = featured.forward(ds[0], scaler).value()(0, 0);
  const double drr_pred = featured.forward(drr, scaler).value()(0, 0);
  EXPECT_NE(fifo_pred, drr_pred);
  // ...while the feature-less model is blind to the scenario change.
  const double plain_a = plain.forward(ds[0], scaler).value()(0, 0);
  const double plain_b = plain.forward(drr, scaler).value()(0, 0);
  EXPECT_EQ(plain_a, plain_b);
}

// Hand-written v1 bundle (pre-scenario layout, no scenario_features
// byte): must load with the flag off and serve bitwise-identically to
// the same weights in memory.
TEST(Bundle, V1BundlesLoadAndServeBitwiseIdentically) {
  const std::string path = "/tmp/rnx_bundle_v1.rnxb";
  const data::Dataset& ds = test_dataset();
  const core::ExtendedRouteNet model(small_config());
  const data::Scaler scaler = data::Scaler::fit(ds.samples(), 5);

  // Mirror save_bundle's v1 writer: v2 minus the scenario byte.
  std::ostringstream body(std::ios::binary);
  auto put = [&body](const auto& v) {
    body.write(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  put(std::uint8_t{1});  // kind: ext
  put(std::uint8_t{0});  // target: delay
  put(std::uint64_t{5});  // min_delivered
  const core::ModelConfig& mc = model.config();
  put(static_cast<std::uint64_t>(mc.state_dim));
  put(static_cast<std::uint64_t>(mc.readout_hidden));
  put(static_cast<std::uint64_t>(mc.iterations));
  put(static_cast<std::uint8_t>(mc.node_rule));
  put(static_cast<std::uint8_t>(mc.node_mean_aggregation ? 1 : 0));
  put(static_cast<std::uint8_t>(mc.fused_gru ? 1 : 0));
  put(mc.init_seed);
  for (const data::Moments* m :
       {&scaler.traffic_moments(), &scaler.capacity_moments(),
        &scaler.queue_moments(), &scaler.log_delay_moments(),
        &scaler.log_jitter_moments()}) {
    put(m->mean);
    put(m->stddev);
  }
  const nn::NamedParams params = model.named_params();
  nn::save_params(body, params);
  const std::string bytes = body.str();
  {
    std::ofstream f(path, std::ios::binary);
    f.write("RNXB", 4);
    const std::uint32_t version = 1;
    f.write(reinterpret_cast<const char*>(&version), sizeof(version));
    const auto size = static_cast<std::uint64_t>(bytes.size());
    f.write(reinterpret_cast<const char*>(&size), sizeof(size));
    const std::uint64_t sum = fnv1a64(bytes);
    f.write(reinterpret_cast<const char*>(&sum), sizeof(sum));
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  const serve::ModelBundle loaded = serve::load_bundle(path);
  EXPECT_FALSE(loaded.model->config().scenario_features);
  EXPECT_EQ(loaded.min_delivered, 5u);
  const serve::InferenceEngine engine(path);
  for (const auto& sample : ds.samples()) {
    const nn::NoGradGuard guard;
    const nn::Tensor direct = model.forward(sample, scaler).value();
    const std::vector<double> served = engine.predict(sample);
    ASSERT_EQ(served.size(), static_cast<std::size_t>(direct.rows()));
    for (std::size_t i = 0; i < served.size(); ++i)
      EXPECT_EQ(served[i], scaler.target_to_delay(direct(i, 0)));
  }
  std::filesystem::remove(path);
}

TEST(Bundle, V3FeatureFlagsRoundTrip) {
  const std::string path = "/tmp/rnx_bundle_v3_flags.rnxb";
  const data::Dataset& ds = test_dataset();
  core::ModelConfig mc = small_config();
  mc.scale_invariant_features = true;
  mc.link_mean_aggregation = true;
  const core::ExtendedRouteNet model(mc);
  const data::Scaler scaler = data::Scaler::fit(ds.samples(), 5);
  serve::save_bundle(path, model, scaler, core::PredictionTarget::kDelay, 5);
  const serve::ModelBundle loaded = serve::load_bundle(path);
  EXPECT_TRUE(loaded.model->config().scale_invariant_features);
  EXPECT_TRUE(loaded.model->config().link_mean_aggregation);
  // And the loaded engine serves the scale-invariant forward bitwise.
  const serve::InferenceEngine engine(path);
  const nn::NoGradGuard guard;
  const nn::Tensor direct = model.forward(ds[0], scaler).value();
  const std::vector<double> served = engine.predict(ds[0]);
  ASSERT_EQ(served.size(), static_cast<std::size_t>(direct.rows()));
  for (std::size_t i = 0; i < served.size(); ++i)
    EXPECT_EQ(served[i], scaler.target_to_delay(direct(i, 0)));
  std::filesystem::remove(path);
}

// Hand-written v2 bundle (scenario byte present, no v3 feature bytes):
// must load with both v3 flags off and serve bitwise-identically.
TEST(Bundle, V2BundlesLoadWithV3FlagsOff) {
  const std::string path = "/tmp/rnx_bundle_v2.rnxb";
  const data::Dataset& ds = test_dataset();
  const core::ExtendedRouteNet model(small_config());
  const data::Scaler scaler = data::Scaler::fit(ds.samples(), 5);

  std::ostringstream body(std::ios::binary);
  auto put = [&body](const auto& v) {
    body.write(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  put(std::uint8_t{1});   // kind: ext
  put(std::uint8_t{0});   // target: delay
  put(std::uint64_t{5});  // min_delivered
  const core::ModelConfig& mc = model.config();
  put(static_cast<std::uint64_t>(mc.state_dim));
  put(static_cast<std::uint64_t>(mc.readout_hidden));
  put(static_cast<std::uint64_t>(mc.iterations));
  put(static_cast<std::uint8_t>(mc.node_rule));
  put(static_cast<std::uint8_t>(mc.node_mean_aggregation ? 1 : 0));
  put(static_cast<std::uint8_t>(mc.fused_gru ? 1 : 0));
  put(std::uint8_t{0});  // scenario_features (the v2 addition)
  put(mc.init_seed);
  for (const data::Moments* m :
       {&scaler.traffic_moments(), &scaler.capacity_moments(),
        &scaler.queue_moments(), &scaler.log_delay_moments(),
        &scaler.log_jitter_moments()}) {
    put(m->mean);
    put(m->stddev);
  }
  const nn::NamedParams params = model.named_params();
  nn::save_params(body, params);
  const std::string bytes = body.str();
  {
    std::ofstream f(path, std::ios::binary);
    f.write("RNXB", 4);
    const std::uint32_t version = 2;
    f.write(reinterpret_cast<const char*>(&version), sizeof(version));
    const auto size = static_cast<std::uint64_t>(bytes.size());
    f.write(reinterpret_cast<const char*>(&size), sizeof(size));
    const std::uint64_t sum = fnv1a64(bytes);
    f.write(reinterpret_cast<const char*>(&sum), sizeof(sum));
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  const serve::ModelBundle loaded = serve::load_bundle(path);
  EXPECT_FALSE(loaded.model->config().scale_invariant_features);
  EXPECT_FALSE(loaded.model->config().link_mean_aggregation);
  const serve::InferenceEngine engine(path);
  const nn::NoGradGuard guard;
  const nn::Tensor direct = model.forward(ds[0], scaler).value();
  const std::vector<double> served = engine.predict(ds[0]);
  ASSERT_EQ(served.size(), static_cast<std::size_t>(direct.rows()));
  for (std::size_t i = 0; i < served.size(); ++i)
    EXPECT_EQ(served[i], scaler.target_to_delay(direct(i, 0)));
  std::filesystem::remove(path);
}

TEST(Engine, BatchMatchesSingleAndReusesPlans) {
  const std::string path = "/tmp/rnx_bundle_engine_batch.rnxb";
  make_saved_bundle(path);
  const data::Dataset& ds = test_dataset();

  const serve::InferenceEngine engine(path, 2);
  EXPECT_EQ(engine.threads(), 2u);
  const std::vector<std::vector<double>> batch =
      engine.predict_batch(ds.samples());
  ASSERT_EQ(batch.size(), ds.size());
  for (std::size_t si = 0; si < ds.size(); ++si)
    EXPECT_EQ(batch[si], engine.predict(ds[si]));

  // The second pass over the same samples is served from the plan cache.
  EXPECT_GT(engine.plan_cache().hits(), 0u);
  std::filesystem::remove(path);
}

TEST(Engine, ConcurrentPredictIsDeterministic) {
  const std::string path = "/tmp/rnx_bundle_engine_mt.rnxb";
  make_saved_bundle(path);
  const data::Dataset& ds = test_dataset();

  const serve::InferenceEngine engine(path);
  std::vector<std::vector<double>> expected;
  expected.reserve(ds.size());
  for (const auto& s : ds.samples()) expected.push_back(engine.predict(s));

  std::vector<std::thread> threads;
  std::vector<int> failures(4, 0);
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&, t] {
      for (int rep = 0; rep < 3; ++rep)
        for (std::size_t si = 0; si < ds.size(); ++si)
          if (engine.predict(ds[si]) != expected[si]) ++failures[t];
    });
  for (auto& th : threads) th.join();
  for (const int f : failures) EXPECT_EQ(f, 0);
  std::filesystem::remove(path);
}

}  // namespace
