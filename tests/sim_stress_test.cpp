// Failure-injection and extreme-regime tests for the simulator and the
// dataset pipeline: severe overload, starvation, degenerate topologies,
// pathological traffic matrices.  The simulator must stay conservative
// (no lost packets in the accounting) and numerically sane everywhere.
#include <gtest/gtest.h>

#include <cmath>

#include "data/generator.hpp"
#include "sim/mm1k.hpp"
#include "sim/simulator.hpp"
#include "topo/traffic.hpp"
#include "topo/zoo.hpp"

namespace {

using namespace rnx;

void expect_conservation(const sim::SimResult& res) {
  for (const auto& p : res.paths)
    EXPECT_EQ(p.generated, p.delivered + p.dropped)
        << p.src << "->" << p.dst;
}

TEST(SimStress, SevereOverloadTinyQueues) {
  // 5x overload into 1-packet queues: most packets drop, accounting
  // stays exact, delays stay at service scale.
  topo::Topology t = topo::line(2, 1e6);
  t.set_all_queue_sizes(1);
  const topo::RoutingScheme rs = topo::hop_count_routing(t);
  topo::TrafficMatrix tm(2);
  tm.set(0, 1, 5e6);
  sim::SimConfig cfg;
  cfg.window_s = 20.0;
  sim::Simulator s(t, rs, tm, cfg);
  const sim::SimResult res = s.run();
  expect_conservation(res);
  const auto& p = res.path(0, 1);
  EXPECT_GT(p.loss_rate(), 0.5);
  EXPECT_GT(p.delivered, 0u);
  // K=1: no queueing wait; delay is pure service (mean 8ms at 1 Mbps).
  EXPECT_LT(p.mean_delay_s, 0.1);
  // K=1 cannot pipeline: the server idles while waiting for the next
  // arrival, so utilization is lambda/(lambda+mu) = 5/6, not 1.0 —
  // exactly the M/M/1/1 closed form.
  EXPECT_NEAR(res.links[0].utilization,
              sim::mm1k_utilization(5.0 * 125.0, 125.0, 1), 0.02);
}

TEST(SimStress, NearZeroTraffic) {
  topo::Topology t = topo::line(2, 1e6);
  const topo::RoutingScheme rs = topo::hop_count_routing(t);
  topo::TrafficMatrix tm(2);
  tm.set(0, 1, 80.0);  // ~0.01 pkt/s: a handful of packets
  sim::SimConfig cfg;
  cfg.window_s = 200.0;
  sim::Simulator s(t, rs, tm, cfg);
  const sim::SimResult res = s.run();
  expect_conservation(res);
  const auto& p = res.path(0, 1);
  EXPECT_EQ(p.dropped, 0u);
  if (p.delivered > 0) {
    EXPECT_GT(p.mean_delay_s, 0.0);
    EXPECT_TRUE(std::isfinite(p.jitter_s2));
  }
}

TEST(SimStress, SingleFlowAmongSilentPairs) {
  // Only one pair carries traffic on GEANT2; every other path must
  // report zeros, not garbage.
  const topo::Topology t = topo::geant2();
  const topo::RoutingScheme rs = topo::hop_count_routing(t);
  topo::TrafficMatrix tm(24);
  tm.set(3, 17, 1e6);
  sim::SimConfig cfg;
  cfg.window_s = 2.0;
  sim::Simulator s(t, rs, tm, cfg);
  const sim::SimResult res = s.run();
  EXPECT_EQ(res.paths.size(), 1u);  // silent pairs produce no flow entry
  expect_conservation(res);
  EXPECT_GT(res.path(3, 17).delivered, 100u);
}

TEST(SimStress, StarHubContention) {
  // All leaves send through the hub: hub output queues are the shared
  // bottleneck; leaf-to-leaf delays reflect hub queueing.
  topo::Topology t = topo::star(6, 1e6);
  t.set_queue_size(0, 4);  // small hub buffers
  const topo::RoutingScheme rs = topo::hop_count_routing(t);
  topo::TrafficMatrix tm(7);
  for (topo::NodeId a = 1; a <= 6; ++a)
    for (topo::NodeId b = 1; b <= 6; ++b)
      if (a != b) tm.set(a, b, 0.04e6);
  sim::SimConfig cfg;
  cfg.window_s = 30.0;
  sim::Simulator s(t, rs, tm, cfg);
  const sim::SimResult res = s.run();
  expect_conservation(res);
  std::uint64_t hub_drops = 0;
  for (const topo::LinkId l : t.graph().out_links(0))
    hub_drops += res.links[l].drops;
  EXPECT_GT(hub_drops, 0u);  // small hub buffers under 6x fan-in
}

TEST(SimStress, LongChainManyHops) {
  // 12-hop chain end to end; delays accumulate linearly-ish, events
  // scale with hops, accounting stays exact.
  const topo::Topology t = topo::line(13, 10e6);
  const topo::RoutingScheme rs = topo::hop_count_routing(t);
  topo::TrafficMatrix tm(13);
  tm.set(0, 12, 2e6);
  sim::SimConfig cfg;
  cfg.window_s = 10.0;
  sim::Simulator s(t, rs, tm, cfg);
  const sim::SimResult res = s.run();
  expect_conservation(res);
  const auto& p = res.path(0, 12);
  ASSERT_GT(p.delivered, 1'000u);
  // At rho=0.2 per hop: ~12 service times minimum.
  EXPECT_GT(p.mean_delay_s, 12 * 8000.0 / 10e6 * 0.9);
}

TEST(SimStress, EventCapTruncatesGracefully) {
  topo::Topology t = topo::line(2, 1e6);
  const topo::RoutingScheme rs = topo::hop_count_routing(t);
  topo::TrafficMatrix tm(2);
  tm.set(0, 1, 0.5e6);
  sim::SimConfig cfg;
  cfg.window_s = 1000.0;
  cfg.max_events = 5'000;  // far below what the run needs
  sim::Simulator s(t, rs, tm, cfg);
  const sim::SimResult res = s.run();  // must not hang or throw
  EXPECT_LE(res.total_events, 5'001u);
}

TEST(GeneratorStress, ExtremeUtilizationTargets) {
  data::GeneratorConfig cfg;
  cfg.target_packets = 4'000;
  cfg.util_lo = 1.3;  // deliberately overloaded datasets
  cfg.util_hi = 1.5;
  util::RngStream rng(3);
  const data::Sample s = data::generate_sample(topo::ring(4), cfg, rng);
  s.validate();
  // Overload means drops; loss labels must reflect it somewhere.
  double max_loss = 0.0;
  for (const auto& p : s.paths) max_loss = std::max(max_loss, p.loss_rate);
  EXPECT_GT(max_loss, 0.05);
}

TEST(GeneratorStress, AllTrafficModelsProduceUsableSamples) {
  for (const auto model :
       {data::TrafficModel::kUniform, data::TrafficModel::kGravity,
        data::TrafficModel::kHotspot, data::TrafficModel::kMix}) {
    data::GeneratorConfig cfg;
    cfg.target_packets = 4'000;
    cfg.traffic = model;
    util::RngStream rng(7);
    const data::Sample s = data::generate_sample(topo::ring(4), cfg, rng);
    s.validate();
    std::size_t usable = 0;
    for (const auto& p : s.paths)
      if (p.delivered > 0) ++usable;
    EXPECT_GT(usable, s.paths.size() / 2)
        << "model " << static_cast<int>(model);
  }
}

TEST(GeneratorStress, RandomTopologiesEndToEnd) {
  // The full pipeline must work on arbitrary connected graphs, not just
  // the paper's two maps.
  util::RngStream trng(11);
  for (int i = 0; i < 3; ++i) {
    const topo::Topology t = topo::random_connected(8, 12, trng);
    data::GeneratorConfig cfg;
    cfg.target_packets = 4'000;
    util::RngStream rng(static_cast<std::uint64_t>(i));
    const data::Sample s = data::generate_sample(t, cfg, rng);
    s.validate();
    EXPECT_EQ(s.num_nodes, 8u);
    EXPECT_EQ(s.paths.size(), 56u);
  }
}

}  // namespace
