// FaultInjector unit tests (DESIGN.md §R): spec grammar, firing
// directives, modifiers, prefix matching, counters, and the disarmed
// fast path.  The injector is a process-wide singleton, so every test
// disarms it on teardown — a leaked rule would silently poison later
// tests in the same binary.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "util/fault.hpp"

namespace {

using rnx::util::fault_fires;
using rnx::util::FaultInjectedError;
using rnx::util::FaultInjector;

class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::instance().reset(); }
  void TearDown() override { FaultInjector::instance().reset(); }
};

TEST_F(FaultTest, DisarmedByDefault) {
  FaultInjector& fi = FaultInjector::instance();
  EXPECT_FALSE(fi.enabled());
  EXPECT_FALSE(fault_fires("io.atomic.write"));
  // Disarmed hits are not even counted — the zero-cost contract.
  EXPECT_EQ(fi.hits("io.atomic.write"), 0u);
  EXPECT_EQ(fi.param("io.atomic.write"), 0u);
}

TEST_F(FaultTest, NthFiresOnExactlyTheKthHit) {
  FaultInjector& fi = FaultInjector::instance();
  fi.configure("site.a=nth:3");
  EXPECT_TRUE(fi.enabled());
  EXPECT_FALSE(fi.fire("site.a"));
  EXPECT_FALSE(fi.fire("site.a"));
  EXPECT_TRUE(fi.fire("site.a"));
  EXPECT_FALSE(fi.fire("site.a"));
  EXPECT_FALSE(fi.fire("site.a"));
  EXPECT_EQ(fi.hits("site.a"), 5u);
  EXPECT_EQ(fi.fired("site.a"), 1u);
}

TEST_F(FaultTest, EveryFiresPeriodically) {
  FaultInjector& fi = FaultInjector::instance();
  fi.configure("s=every:3");
  std::vector<bool> fired;
  for (int i = 0; i < 9; ++i) fired.push_back(fi.fire("s"));
  const std::vector<bool> want = {false, false, true, false, false,
                                  true, false, false, true};
  EXPECT_EQ(fired, want);
  EXPECT_EQ(fi.fired("s"), 3u);
}

TEST_F(FaultTest, AlwaysWithLimitStopsAfterMFirings) {
  FaultInjector& fi = FaultInjector::instance();
  fi.configure("s=always,limit:2");
  EXPECT_TRUE(fi.fire("s"));
  EXPECT_TRUE(fi.fire("s"));
  EXPECT_FALSE(fi.fire("s"));
  EXPECT_FALSE(fi.fire("s"));
  EXPECT_EQ(fi.fired("s"), 2u);
  EXPECT_EQ(fi.hits("s"), 4u);
}

TEST_F(FaultTest, ProbEndpointsAndSeededReplay) {
  FaultInjector& fi = FaultInjector::instance();
  fi.configure("s=prob:1.0");
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(fi.fire("s"));
  fi.configure("s=prob:0.0");
  for (int i = 0; i < 8; ++i) EXPECT_FALSE(fi.fire("s"));

  // Same seed => same Bernoulli sequence: the replayability contract.
  fi.configure("s=prob:0.5,seed:9");
  std::vector<bool> first;
  for (int i = 0; i < 64; ++i) first.push_back(fi.fire("s"));
  fi.configure("s=prob:0.5,seed:9");
  std::vector<bool> second;
  for (int i = 0; i < 64; ++i) second.push_back(fi.fire("s"));
  EXPECT_EQ(first, second);
  // And it is a real coin, not a constant.
  std::size_t ones = 0;
  for (const bool b : first) ones += b;
  EXPECT_GT(ones, 0u);
  EXPECT_LT(ones, first.size());
}

TEST_F(FaultTest, PrefixRuleArmsEveryMatchingSite) {
  FaultInjector& fi = FaultInjector::instance();
  fi.configure("io.*=always");
  EXPECT_TRUE(fi.fire("io.atomic.write"));
  EXPECT_TRUE(fi.fire("io.shard.bitflip"));
  EXPECT_FALSE(fi.fire("serve.execute"));
}

TEST_F(FaultTest, ParamPayloadIsVisibleToTheSite) {
  FaultInjector& fi = FaultInjector::instance();
  fi.configure("serve.execute.slow=always,param:1500");
  EXPECT_EQ(fi.param("serve.execute.slow"), 1500u);
  EXPECT_EQ(fi.param("serve.execute"), 0u);  // no rule, no payload
}

TEST_F(FaultTest, MultiRuleSpecsAreIndependent) {
  FaultInjector& fi = FaultInjector::instance();
  fi.configure("a=nth:1;b=nth:2");
  EXPECT_TRUE(fi.fire("a"));
  EXPECT_FALSE(fi.fire("b"));
  EXPECT_TRUE(fi.fire("b"));
}

TEST_F(FaultTest, MaybeThrowNamesTheSite) {
  FaultInjector& fi = FaultInjector::instance();
  fi.configure("source.producer=always");
  try {
    fi.maybe_throw("source.producer");
    FAIL() << "armed site did not throw";
  } catch (const FaultInjectedError& e) {
    EXPECT_NE(std::string(e.what()).find("source.producer"),
              std::string::npos)
        << e.what();
  }
  // Disarmed site: maybe_throw is a no-op.
  fi.reset();
  EXPECT_NO_THROW(fi.maybe_throw("source.producer"));
}

TEST_F(FaultTest, ResetDisarmsAndClearsCounters) {
  FaultInjector& fi = FaultInjector::instance();
  fi.configure("s=always");
  EXPECT_TRUE(fi.fire("s"));
  fi.reset();
  EXPECT_FALSE(fi.enabled());
  EXPECT_FALSE(fi.fire("s"));
  EXPECT_EQ(fi.hits("s"), 0u);
  EXPECT_EQ(fi.fired("s"), 0u);
}

TEST_F(FaultTest, EmptySpecDisarms) {
  FaultInjector& fi = FaultInjector::instance();
  fi.configure("s=always");
  fi.configure("");
  EXPECT_FALSE(fi.enabled());
}

TEST_F(FaultTest, BadSpecsThrowAndLeaveInjectorDisarmed) {
  FaultInjector& fi = FaultInjector::instance();
  EXPECT_THROW(fi.configure("s"), std::invalid_argument);           // no '='
  EXPECT_THROW(fi.configure("s=nth:0"), std::invalid_argument);    // 1-based
  EXPECT_THROW(fi.configure("s=every:0"), std::invalid_argument);
  EXPECT_THROW(fi.configure("s=sometimes"), std::invalid_argument);
  EXPECT_THROW(fi.configure("s=prob:1.5"), std::invalid_argument);
  EXPECT_THROW(fi.configure("s=prob:abc"), std::invalid_argument);
  EXPECT_THROW(fi.configure("s=nth:2,bogus:1"), std::invalid_argument);
  EXPECT_FALSE(fi.enabled());
}

}  // namespace
