// Scalar-vs-SIMD parity suite for the runtime-dispatched kernel
// backends (DESIGN.md §K).  Pins the three-tier contract:
//
//   * linear elementwise kernels (vadd/vsub/vmul/vmacc/vaxpy/vaffine/
//     vrelu) are BITWISE identical across backends — same per-element
//     IEEE mul/add sequence, no FMA contraction;
//   * the matmul family keeps the per-cell ascending-p accumulation
//     order but contracts mul+add into FMA, so it is pinned to a tight
//     relative bound instead;
//   * vsigmoid/vtanh use a vectorized polynomial on SIMD backends and
//     are pinned to a small absolute bound plus exact saturation.
//
// Shapes deliberately cover the ragged cases the register tiles must
// tail-handle (1-wide, odd rows, column tails, empty) and matmul shapes
// on both sides of the B-panel packing threshold, so packed and
// unpacked code paths are both exercised.  Gradcheck re-runs under an
// explicit SIMD pin so backward passes are verified against central
// differences on the vector kernels, not just on the scalar reference.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "nn/gradcheck.hpp"
#include "nn/gru.hpp"
#include "nn/init.hpp"
#include "nn/kernels.hpp"
#include "nn/ops.hpp"
#include "nn/tensor.hpp"
#include "util/rng.hpp"

namespace {

using namespace rnx::nn;
using kernels::Backend;
using kernels::ScopedBackendOverride;
using rnx::util::RngStream;

std::vector<double> rand_vec(std::size_t n, std::uint64_t seed, double lo = -4.0,
                             double hi = 4.0) {
  RngStream rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.uniform(lo, hi);
  return v;
}

// Lengths that hit every vector-width tail: empty, sub-lane, one lane,
// lane+tail, multi-lane, and the unrolled-by-2 boundary cases.
const std::vector<std::size_t> kLens = {0,  1,  2,  3,  4,  5,  7, 8,
                                        9,  15, 16, 17, 31, 33, 100};

// ---- linear elementwise kernels: bitwise across backends -------------------

TEST(NnKernelsParity, LinearElementwiseBitwise) {
  const Backend* simd = kernels::simd_backend();
  if (simd == nullptr) GTEST_SKIP() << "scalar-only host";
  const Backend& scalar = kernels::scalar_backend();

  for (const std::size_t n : kLens) {
    const std::vector<double> a = rand_vec(n, 100 + n);
    const std::vector<double> b = rand_vec(n, 200 + n);
    const std::vector<double> y0 = rand_vec(n, 300 + n);

    const auto check = [&](const char* name, auto&& call) {
      std::vector<double> ys = y0, yv = y0;
      call(scalar, ys);
      call(*simd, yv);
      for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(ys[i], yv[i]) << name << " n=" << n << " i=" << i;
    };

    check("vadd", [&](const Backend& k, std::vector<double>& y) {
      k.vadd(y.data(), a.data(), b.data(), n);
    });
    check("vsub", [&](const Backend& k, std::vector<double>& y) {
      k.vsub(y.data(), a.data(), b.data(), n);
    });
    check("vmul", [&](const Backend& k, std::vector<double>& y) {
      k.vmul(y.data(), a.data(), b.data(), n);
    });
    check("vmacc", [&](const Backend& k, std::vector<double>& y) {
      k.vmacc(y.data(), a.data(), b.data(), n);
    });
    check("vaxpy", [&](const Backend& k, std::vector<double>& y) {
      k.vaxpy(y.data(), 1.7, a.data(), n);
    });
    check("vaffine", [&](const Backend& k, std::vector<double>& y) {
      k.vaffine(y.data(), a.data(), -0.9, 0.3, n);
    });
    check("vrelu", [&](const Backend& k, std::vector<double>& y) {
      k.vrelu(y.data(), a.data(), n);
    });
  }
}

// ---- matmul family: per-cell order kept, FMA contraction allowed -----------

struct MmShape {
  std::size_t n, k, m;
};

// Both sides of the 16 KiB B-panel packing threshold (k*m*8 bytes,
// n >= 8), plus every tail case: 1-wide, 1-tall, odd rows, sub-16 and
// 16+tail columns, empty operands.
const std::vector<MmShape> kMmShapes = {
    {0, 5, 7},    {5, 0, 7},   {5, 7, 0},   {1, 1, 1},   {1, 8, 1},
    {3, 5, 2},    {2, 3, 16},  {5, 4, 17},  {7, 16, 16}, {8, 16, 33},
    {9, 40, 48},                      // k*m*8 = 15360 < 16 KiB: unpacked
    {9, 40, 52},                      // k*m*8 = 16640 > 16 KiB: packed
    {7, 80, 52},                      // over threshold but n < 8: unpacked
    {32, 64, 64},                     // packed, even rows, aligned columns
    {33, 64, 70},                     // packed, odd rows + column tail
    {552, 16, 16},                    // the RouteNet hot shape
};

double max_rel_diff(const std::vector<double>& x, const std::vector<double>& y,
                    double floor = 1.0) {
  double worst = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double denom =
        std::max({std::abs(x[i]), std::abs(y[i]), floor});
    worst = std::max(worst, std::abs(x[i] - y[i]) / denom);
  }
  return worst;
}

TEST(NnKernelsParity, MatmulFamilyRelativeBound) {
  const Backend* simd = kernels::simd_backend();
  if (simd == nullptr) GTEST_SKIP() << "scalar-only host";
  const Backend& scalar = kernels::scalar_backend();

  for (const MmShape& s : kMmShapes) {
    // matmul_acc: a (n x k), b (k x m).  tn: a (k x n).  nt: b (m x k).
    const std::vector<double> a_nk = rand_vec(s.n * s.k, 11 + s.n);
    const std::vector<double> a_kn = rand_vec(s.k * s.n, 13 + s.k);
    const std::vector<double> b_km = rand_vec(s.k * s.m, 17 + s.m);
    const std::vector<double> b_mk = rand_vec(s.m * s.k, 19 + s.m);
    // Accumulate into a non-trivial C: the kernels are += kernels, and
    // parity must hold including the preloaded values.
    const std::vector<double> c0 = rand_vec(s.n * s.m, 23 + s.n + s.m);

    // FMA keeps one rounding per multiply-add instead of two, so the
    // per-cell divergence grows with the k-long dot product.
    const double tol =
        1e-15 * static_cast<double>(std::max<std::size_t>(s.k, 1)) * 8.0;

    const auto check = [&](const char* name, auto member, const double* a,
                           const double* b) {
      std::vector<double> cs = c0, cv = c0;
      (scalar.*member)(cs.data(), a, b, s.n, s.k, s.m);
      ((*simd).*member)(cv.data(), a, b, s.n, s.k, s.m);
      EXPECT_LE(max_rel_diff(cs, cv), tol)
          << name << " n=" << s.n << " k=" << s.k << " m=" << s.m;
    };
    check("matmul_acc", &Backend::matmul_acc, a_nk.data(), b_km.data());
    check("matmul_tn_acc", &Backend::matmul_tn_acc, a_kn.data(), b_km.data());
    check("matmul_nt_acc", &Backend::matmul_nt_acc, a_nk.data(), b_mk.data());
  }
}

// The scalar reference itself must stay self-consistent when called
// through the dispatch layer vs directly — guards against the override
// machinery ever routing to the wrong table.
TEST(NnKernelsParity, ScalarOverrideRoutesToScalar) {
  const Backend& scalar = kernels::scalar_backend();
  const ScopedBackendOverride pin(scalar);
  EXPECT_EQ(&kernels::active(), &scalar);
}

// ---- transcendentals: small absolute bound + exact saturation --------------

TEST(NnKernelsParity, SigmoidTanhCloseAndSaturating) {
  const Backend* simd = kernels::simd_backend();
  if (simd == nullptr) GTEST_SKIP() << "scalar-only host";
  const Backend& scalar = kernels::scalar_backend();

  for (const std::size_t n : kLens) {
    // Wide range: the polynomial branch, the saturation branch and the
    // tiny-argument branch all get hit.
    std::vector<double> a = rand_vec(n, 400 + n, -40.0, 40.0);
    if (n >= 4) {
      a[0] = 0.0;
      a[1] = 1e-9;
      a[2] = 750.0;   // beyond exp range: must saturate, not NaN
      a[3] = -750.0;
    }
    std::vector<double> ys(n), yv(n);
    scalar.vsigmoid(ys.data(), a.data(), n);
    simd->vsigmoid(yv.data(), a.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(std::isfinite(yv[i])) << "sigmoid x=" << a[i];
      EXPECT_NEAR(ys[i], yv[i], 1e-12) << "sigmoid x=" << a[i];
      EXPECT_GE(yv[i], 0.0);
      EXPECT_LE(yv[i], 1.0);
    }
    scalar.vtanh(ys.data(), a.data(), n);
    simd->vtanh(yv.data(), a.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(std::isfinite(yv[i])) << "tanh x=" << a[i];
      EXPECT_NEAR(ys[i], yv[i], 1e-12) << "tanh x=" << a[i];
      EXPECT_GE(yv[i], -1.0);
      EXPECT_LE(yv[i], 1.0);
    }
  }
}

// ---- fused GRU kernels ----------------------------------------------------

TEST(NnKernelsParity, GruGatesAndBlend) {
  const Backend* simd = kernels::simd_backend();
  if (simd == nullptr) GTEST_SKIP() << "scalar-only host";
  const Backend& scalar = kernels::scalar_backend();

  for (const std::size_t rows : {std::size_t{1}, std::size_t{3}, std::size_t{8}})
    for (const std::size_t hid : {std::size_t{1}, std::size_t{5},
                                  std::size_t{16}, std::size_t{17}}) {
      const std::size_t n = rows * hid;
      const std::vector<double> a_zr = rand_vec(rows * 2 * hid, 31 + n);
      const std::vector<double> h = rand_vec(n, 37 + n);
      const std::vector<double> an = rand_vec(n, 41 + n);

      std::vector<double> zs(n), rs(n), rhs(n), zv(n), rv(n), rhv(n);
      scalar.gru_gates(zs.data(), rs.data(), rhs.data(), a_zr.data(), h.data(),
                       rows, hid);
      simd->gru_gates(zv.data(), rv.data(), rhv.data(), a_zr.data(), h.data(),
                      rows, hid);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(zs[i], zv[i], 1e-12) << "z rows=" << rows << " hid=" << hid;
        EXPECT_NEAR(rs[i], rv[i], 1e-12) << "r";
        EXPECT_NEAR(rhs[i], rhv[i], 1e-12) << "rh";
      }

      std::vector<double> ns(n), ys(n), nv(n), yv(n);
      scalar.gru_blend(ns.data(), ys.data(), an.data(), zs.data(), h.data(), n);
      simd->gru_blend(nv.data(), yv.data(), an.data(), zs.data(), h.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(ns[i], nv[i], 1e-12) << "nout";
        EXPECT_NEAR(ys[i], yv[i], 1e-12) << "y";
      }
    }
}

// The full fused GRU step through the op layer: scalar vs SIMD within a
// forward bound loose enough for the transcendental divergence but tight
// enough to catch any indexing or tail bug instantly.
TEST(NnKernelsParity, GruStepForwardClose) {
  const Backend* simd = kernels::simd_backend();
  if (simd == nullptr) GTEST_SKIP() << "scalar-only host";

  RngStream rng(51);
  const GRUCell cell(16, 16, rng);
  const Var x(uniform_init(21, 16, -1.0, 1.0, rng), false);
  const Var h(uniform_init(21, 16, -1.0, 1.0, rng), false);
  const NoGradGuard guard;

  Tensor ys, yv;
  {
    const ScopedBackendOverride pin(kernels::scalar_backend());
    ys = cell.step(x, h).value();
  }
  {
    const ScopedBackendOverride pin(*simd);
    yv = cell.step(x, h).value();
  }
  ASSERT_EQ(ys.size(), yv.size());
  for (std::size_t i = 0; i < ys.size(); ++i)
    EXPECT_NEAR(ys.flat()[i], yv.flat()[i], 1e-11);
}

// ---- gradcheck under the SIMD backend -------------------------------------

TEST(NnKernelsGradcheck, MatmulAndGruUnderSimd) {
  const Backend* simd = kernels::simd_backend();
  if (simd == nullptr) GTEST_SKIP() << "scalar-only host";
  const ScopedBackendOverride pin(*simd);

  RngStream rng(61);
  Var a(uniform_init(5, 7, -1.0, 1.0, rng), true);
  Var w(uniform_init(7, 4, -1.0, 1.0, rng), true);
  std::vector<Var> params{a, w};
  auto rep = grad_check([&] { return mean_all(matmul(a, w)); }, params);
  EXPECT_LT(rep.max_rel_err, 1e-6);

  GRUCell cell(3, 4, rng);
  Var x(uniform_init(5, 3, -1.0, 1.0, rng), true);
  Var h(uniform_init(5, 4, -1.0, 1.0, rng), true);
  std::vector<Var> gparams{x, h};
  for (auto& [name, v] : cell.named_params()) gparams.push_back(v);
  auto grep = grad_check([&] { return sum_all(cell.step(x, h)); }, gparams);
  EXPECT_LT(grep.max_rel_err, 1e-6);
}

// ---- alignment contract ---------------------------------------------------

TEST(NnKernelsAlignment, TensorBuffersAre64ByteAligned) {
  const std::vector<std::pair<std::size_t, std::size_t>> shapes = {
      {1, 1}, {3, 5}, {552, 16}, {17, 33}};
  for (const auto& [r, c] : shapes) {
    Tensor t(r, c);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(t.flat().data()) %
                  kTensorAlign,
              0u)
        << r << "x" << c;
  }
}

// ---- dispatch surface ------------------------------------------------------

TEST(NnKernelsDispatch, ReasonAndActiveAgreeWithEnv) {
  const char* env = std::getenv("RNX_SIMD");
  const std::string mode = env != nullptr ? env : "";
  if (mode != "" && mode != "native" && mode != "scalar") {
    // Invalid values fail loudly instead of silently falling back.
    EXPECT_THROW((void)kernels::active(), std::runtime_error);
    return;
  }
  const Backend& act = kernels::active();
  const std::string reason = kernels::dispatch_reason();
  EXPECT_FALSE(reason.empty());
  if (mode == "scalar") {
    EXPECT_EQ(act.isa, kernels::Isa::kScalar);
    EXPECT_NE(reason.find("RNX_SIMD"), std::string::npos) << reason;
  } else {
    // Auto (unset or "native"): best available wins.
    const Backend* simd = kernels::simd_backend();
    EXPECT_EQ(&act, simd != nullptr ? simd : &kernels::scalar_backend());
  }
  EXPECT_STREQ(act.name, kernels::to_string(act.isa));
}

TEST(NnKernelsDispatch, OverrideNestsAndRestores) {
  const Backend& outer = kernels::active();
  const Backend& scalar = kernels::scalar_backend();
  {
    const ScopedBackendOverride pin1(scalar);
    EXPECT_EQ(&kernels::active(), &scalar);
    const Backend* simd = kernels::simd_backend();
    if (simd != nullptr) {
      const ScopedBackendOverride pin2(*simd);
      EXPECT_EQ(&kernels::active(), simd);
    }
    EXPECT_EQ(&kernels::active(), &scalar);
  }
  EXPECT_EQ(&kernels::active(), &outer);
}

// ---- bitwise neutrality on trained weights --------------------------------

// The TensorPool scratch routing and the kernel layer must be
// deterministic end to end: two identically seeded training runs produce
// bit-identical weights, including reused pool buffers between steps.
TEST(NnKernelsNeutrality, TrainingIsBitwiseDeterministic) {
  const auto train_once = [] {
    RngStream rng(71);
    GRUCell cell(4, 6, rng);
    Var x(uniform_init(9, 4, -1.0, 1.0, rng), true);
    Var h(uniform_init(9, 6, -1.0, 1.0, rng), true);
    auto params = cell.named_params();
    for (int step = 0; step < 5; ++step) {
      for (auto& [name, v] : params) v.zero_grad();
      x.zero_grad();
      h.zero_grad();
      Var loss = mean_all(mul(cell.step(x, h), cell.step(x, h)));
      loss.backward();
      for (auto& [name, v] : params) {
        const auto vals = v.mutable_value().flat();
        const auto grads = v.grad().flat();
        for (std::size_t i = 0; i < vals.size(); ++i)
          vals[i] -= 0.05 * grads[i];
      }
    }
    std::vector<double> out;
    for (const auto& [name, v] : params)
      out.insert(out.end(), v.value().flat().begin(), v.value().flat().end());
    return out;
  };
  const std::vector<double> run1 = train_once();
  const std::vector<double> run2 = train_once();
  ASSERT_EQ(run1.size(), run2.size());
  for (std::size_t i = 0; i < run1.size(); ++i) EXPECT_EQ(run1[i], run2[i]);
}

}  // namespace
