// core::PlanCache: hit/miss accounting, content parity with build_plan,
// invalidation, and concurrent access.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/plan_cache.hpp"
#include "core/routenet.hpp"
#include "core/routenet_ext.hpp"
#include "data/normalize.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace rnx;
using core::MpPlan;
using core::PlanCache;

data::Sample line3_sample() {
  data::Sample s;
  s.topo_name = "line3";
  s.num_nodes = 3;
  s.links = {{0, 1}, {1, 0}, {1, 2}, {2, 1}};
  s.link_capacity_bps = {1e6, 1e6, 1e6, 1e6};
  s.queue_pkts = {32, 1, 32};
  data::PathRecord p0;
  p0.src = 0;
  p0.dst = 2;
  p0.nodes = {0, 1, 2};
  p0.links = {0, 2};
  p0.traffic_bps = 1e5;
  p0.mean_delay_s = 1e-3;
  p0.delivered = 100;
  data::PathRecord p1;
  p1.src = 1;
  p1.dst = 2;
  p1.nodes = {1, 2};
  p1.links = {2};
  p1.traffic_bps = 2e5;
  p1.mean_delay_s = 5e-4;
  p1.delivered = 100;
  s.paths = {p0, p1};
  s.validate();
  return s;
}

void expect_plans_equal(const MpPlan& a, const MpPlan& b) {
  EXPECT_EQ(a.num_paths, b.num_paths);
  EXPECT_EQ(a.num_links, b.num_links);
  EXPECT_EQ(a.num_nodes, b.num_nodes);
  ASSERT_EQ(a.num_positions(), b.num_positions());
  for (std::size_t i = 0; i < a.num_positions(); ++i) {
    const core::PlanPosition pa = a.position(i), pb = b.position(i);
    EXPECT_EQ(pa.is_node, pb.is_node);
    EXPECT_TRUE(std::equal(pa.path_rows.begin(), pa.path_rows.end(),
                           pb.path_rows.begin(), pb.path_rows.end()));
    EXPECT_TRUE(std::equal(pa.elem_ids.begin(), pa.elem_ids.end(),
                           pb.elem_ids.begin(), pb.elem_ids.end()));
  }
  EXPECT_EQ(a.inc_path_rows, b.inc_path_rows);
  EXPECT_EQ(a.inc_node_ids, b.inc_node_ids);
}

TEST(PlanCache, MissThenHitReturnsSamePlan) {
  const data::Sample s = line3_sample();
  PlanCache cache;
  const auto first = cache.get(s, /*use_nodes=*/false);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
  const auto second = cache.get(s, /*use_nodes=*/false);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(first.get(), second.get());  // same object, not a rebuild
  expect_plans_equal(*first, core::build_plan(s, false));
}

TEST(PlanCache, UseNodesVariantsAreDistinctEntries) {
  const data::Sample s = line3_sample();
  PlanCache cache;
  const auto plain = cache.get(s, false);
  const auto ext = cache.get(s, true);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_NE(plain.get(), ext.get());
  expect_plans_equal(*ext, core::build_plan(s, true));
}

TEST(PlanCache, InvalidateDropsBothVariants) {
  const data::Sample s = line3_sample();
  const data::Sample other = line3_sample();
  PlanCache cache;
  (void)cache.get(s, false);
  (void)cache.get(s, true);
  (void)cache.get(other, false);
  EXPECT_EQ(cache.size(), 3u);
  cache.invalidate(s);
  EXPECT_EQ(cache.size(), 1u);
  // Re-fetch is a rebuild (miss), not a stale hit.
  (void)cache.get(s, false);
  EXPECT_EQ(cache.misses(), 4u);
}

TEST(PlanCache, SharedPlanSurvivesInvalidation) {
  const data::Sample s = line3_sample();
  PlanCache cache;
  const auto plan = cache.get(s, true);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  // The caller's shared_ptr keeps the plan alive.
  EXPECT_EQ(plan->num_paths, 2u);
}

TEST(PlanCache, DistinctSamplesGetDistinctEntries) {
  const data::Sample a = line3_sample();
  const data::Sample b = line3_sample();  // equal content, distinct identity
  PlanCache cache;
  (void)cache.get(a, false);
  (void)cache.get(b, false);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(PlanCache, ConcurrentGetsYieldOnePlanPerKey) {
  const data::Sample s = line3_sample();
  PlanCache cache;
  util::ThreadPool pool(4);
  std::vector<std::shared_ptr<const MpPlan>> got(64);
  pool.parallel_for(64, [&](std::size_t i) { got[i] = cache.get(s, true); });
  EXPECT_EQ(cache.size(), 1u);
  for (const auto& p : got) {
    ASSERT_NE(p, nullptr);
    expect_plans_equal(*p, *got[0]);
  }
}

// The model-level contract: a cached forward pass computes exactly what
// an uncached one does, and training-loop-shaped reuse stops rebuilding.
TEST(PlanCache, ModelForwardIdenticalWithAndWithoutCache) {
  const data::Sample s = line3_sample();
  const data::Scaler scaler = data::Scaler::fit({&s, 1});
  core::ModelConfig mc;
  mc.state_dim = 6;
  mc.readout_hidden = 8;
  mc.iterations = 2;
  core::ExtendedRouteNet model(mc);

  const nn::NoGradGuard guard;
  const nn::Tensor plain = model.forward(s, scaler).value();
  PlanCache cache;
  model.set_plan_cache(&cache);
  const nn::Tensor cached1 = model.forward(s, scaler).value();
  const nn::Tensor cached2 = model.forward(s, scaler).value();
  model.set_plan_cache(nullptr);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain.flat()[i], cached1.flat()[i]);
    EXPECT_EQ(cached1.flat()[i], cached2.flat()[i]);
  }
}

// -- byte budget / LRU eviction (DESIGN.md §G) -----------------------------

TEST(PlanCache, ByteBudgetEnforcedWithLruEvictionOrder) {
  const data::Sample a = line3_sample();
  const data::Sample b = line3_sample();
  const data::Sample c = line3_sample();
  const std::size_t plan_bytes = core::build_plan(a, false).bytes();
  ASSERT_GT(plan_bytes, 0u);

  // Room for exactly two plans.
  PlanCache cache(2 * plan_bytes);
  (void)cache.get(a, false);
  (void)cache.get(b, false);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().bytes, 2 * plan_bytes);

  // Touch a so b becomes the LRU victim.
  (void)cache.get(a, false);
  (void)cache.get(c, false);  // evicts b, not a
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_LE(cache.stats().bytes, 2 * plan_bytes);  // budget holds
  EXPECT_EQ(cache.stats().evictions, 1u);

  // a survived (hit); b was evicted (miss -> rebuild).
  const std::uint64_t misses_before = cache.misses();
  (void)cache.get(a, false);
  EXPECT_EQ(cache.misses(), misses_before);
  (void)cache.get(b, false);
  EXPECT_EQ(cache.misses(), misses_before + 1);
}

TEST(PlanCache, OversizedPlanServesCallerWithoutResidency) {
  const data::Sample s = line3_sample();
  const std::size_t plan_bytes = core::build_plan(s, false).bytes();
  // Budget below a single plan: the entry is evicted immediately, but
  // the returned pointer must stay usable (shared ownership).
  PlanCache cache(plan_bytes / 2);
  const auto plan = cache.get(s, false);
  EXPECT_EQ(plan->num_paths, 2u);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  // Peak still records the transient residency.
  EXPECT_EQ(cache.stats().peak_bytes, plan_bytes);
}

TEST(PlanCache, SetByteBudgetEvictsImmediately) {
  const data::Sample a = line3_sample();
  const data::Sample b = line3_sample();
  PlanCache cache;  // unlimited
  (void)cache.get(a, false);
  (void)cache.get(b, false);
  const std::size_t plan_bytes = cache.stats().bytes / 2;
  cache.set_byte_budget(plan_bytes);  // room for one
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  // b is the more recently used entry, so a was the victim.
  const std::uint64_t misses_before = cache.misses();
  (void)cache.get(b, false);
  EXPECT_EQ(cache.misses(), misses_before);
}

TEST(PlanCache, StatsConservationLaws) {
  const data::Sample a = line3_sample();
  const data::Sample b = line3_sample();
  const std::size_t plan_bytes = core::build_plan(a, false).bytes();
  PlanCache cache(plan_bytes);  // room for one: every alternation evicts
  for (int round = 0; round < 5; ++round) {
    (void)cache.get(a, false);
    (void)cache.get(b, false);
  }
  const PlanCache::Stats st = cache.stats();
  EXPECT_EQ(st.lookups, 10u);
  EXPECT_EQ(st.hits + st.misses, st.lookups);
  EXPECT_EQ(st.hits, 0u);  // ping-pong: the needed plan is always gone
  EXPECT_EQ(st.misses, 10u);
  EXPECT_EQ(st.evictions, 9u);  // every insert after the first evicts
  EXPECT_EQ(st.size, 1u);
  EXPECT_EQ(st.bytes, plan_bytes);
  EXPECT_GE(st.peak_bytes, st.bytes);
  EXPECT_LE(st.bytes, plan_bytes);  // budget invariant
}

TEST(PlanCache, UnlimitedBudgetNeverEvicts) {
  const data::Sample a = line3_sample();
  const data::Sample b = line3_sample();
  PlanCache cache;  // byte_budget 0 = unlimited
  for (int round = 0; round < 3; ++round) {
    (void)cache.get(a, false);
    (void)cache.get(b, true);
  }
  const PlanCache::Stats st = cache.stats();
  EXPECT_EQ(st.evictions, 0u);
  EXPECT_EQ(st.size, 2u);
  EXPECT_EQ(st.hits, 4u);
  EXPECT_EQ(st.misses, 2u);
  EXPECT_EQ(st.bytes, st.peak_bytes);
}

}  // namespace
