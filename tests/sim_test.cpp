// Validation of the packet-level simulator (DESIGN.md V1).
//
// A two-node topology with one flow is exactly M/M/1/K, so simulated
// delay, loss and utilization must match the closed forms of sim/mm1k.hpp.
// Further tests pin conservation invariants, determinism, multi-hop
// composition, and the queue-size effect the paper's datasets rely on.
#include <gtest/gtest.h>

#include "sim/mm1k.hpp"
#include "sim/simulator.hpp"
#include "topo/zoo.hpp"

namespace {

using namespace rnx;
using sim::SimConfig;
using sim::Simulator;
using sim::SimResult;

// Single-hop scenario: one flow 0->1 over a line(2) with given capacity,
// load rho and queue capacity K.
SimResult run_single_hop(double rho, std::uint32_t k, double window_s = 60.0,
                         std::uint64_t seed = 1) {
  const double cap_bps = 1e6;          // mu = cap / mean_pkt_bits = 125/s
  const double mean_pkt_bits = 8000.0;
  topo::Topology t = topo::line(2, cap_bps);
  t.set_all_queue_sizes(k);
  const topo::RoutingScheme rs = topo::hop_count_routing(t);
  topo::TrafficMatrix tm(2);
  tm.set(0, 1, rho * cap_bps);
  SimConfig cfg;
  cfg.mean_packet_bits = mean_pkt_bits;
  cfg.window_s = window_s;
  cfg.warmup_s = 5.0;
  cfg.seed = seed;
  Simulator s(t, rs, tm, cfg);
  return s.run();
}

TEST(SimValidation, Mm1DelayMatchesTheory) {
  // K large enough that blocking is negligible -> effectively M/M/1.
  const double rho = 0.7, mu = 1e6 / 8000.0;
  const SimResult res = run_single_hop(rho, 200, 300.0);
  const auto& p = res.path(0, 1);
  ASSERT_GT(p.delivered, 10'000u);
  const double theory = sim::mm1_mean_sojourn(rho * mu, mu);
  EXPECT_NEAR(p.mean_delay_s, theory, 0.05 * theory);
  EXPECT_LT(p.loss_rate(), 1e-4);
}

// Property sweep: M/M/1/K blocking and sojourn across (rho, K).
class Mm1kSimProperty
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(Mm1kSimProperty, LossAndDelayMatchClosedForm) {
  const double rho = std::get<0>(GetParam());
  const auto k = static_cast<std::uint32_t>(std::get<1>(GetParam()));
  const double mu = 1e6 / 8000.0;
  const SimResult res = run_single_hop(rho, k, 400.0);
  const auto& p = res.path(0, 1);
  ASSERT_GT(p.generated, 10'000u);

  const double block_theory = sim::mm1k_blocking(rho * mu, mu, k);
  const double sojourn_theory = sim::mm1k_mean_sojourn(rho * mu, mu, k);
  // 5% relative + small absolute tolerance (finite-run noise).
  EXPECT_NEAR(p.loss_rate(), block_theory,
              0.05 * block_theory + 0.004)
      << "rho=" << rho << " K=" << k;
  EXPECT_NEAR(p.mean_delay_s, sojourn_theory, 0.05 * sojourn_theory)
      << "rho=" << rho << " K=" << k;
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, Mm1kSimProperty,
    ::testing::Combine(::testing::Values(0.5, 0.9, 1.2),
                       ::testing::Values(1, 4, 32)));

TEST(SimValidation, UtilizationMatchesTheory) {
  const double rho = 0.6, mu = 1e6 / 8000.0;
  const SimResult res = run_single_hop(rho, 64, 300.0);
  const auto l01 = 0u;  // first directed link of line(2) is 0->1
  EXPECT_NEAR(res.links[l01].utilization,
              sim::mm1k_utilization(rho * mu, mu, 64), 0.02);
}

TEST(SimValidation, MeanQueueMatchesTheory) {
  const double rho = 0.8, mu = 1e6 / 8000.0;
  const SimResult res = run_single_hop(rho, 16, 400.0);
  EXPECT_NEAR(res.links[0].mean_queue_pkts,
              sim::mm1k_mean_system(rho * mu, mu, 16), 0.25);
}

// ---- invariants -------------------------------------------------------------

TEST(SimInvariants, MeasuredCohortConserved) {
  // Every measured packet is delivered or dropped once the loop drains.
  const SimResult res = run_single_hop(1.1, 4, 60.0);
  const auto& p = res.path(0, 1);
  EXPECT_EQ(p.generated, p.delivered + p.dropped);
  EXPECT_GT(p.dropped, 0u);  // overloaded with tiny queue must drop
}

TEST(SimInvariants, ConservationOnMeshedTopology) {
  topo::Topology t = topo::geant2();
  rnx::util::RngStream rng(3);
  topo::randomize_queue_sizes(t, 0.5, rng);
  const topo::RoutingScheme rs = topo::hop_count_routing(t);
  topo::TrafficMatrix tm = topo::uniform_traffic(24, 1.0, 2.0, rng);
  topo::scale_to_max_utilization(tm, t, rs, 0.9);
  SimConfig cfg;
  cfg.window_s = 1.5;
  cfg.warmup_s = 0.1;
  Simulator s(t, rs, tm, cfg);
  const SimResult res = s.run();
  std::uint64_t generated = 0, finished = 0;
  for (const auto& p : res.paths) {
    EXPECT_EQ(p.generated, p.delivered + p.dropped)
        << p.src << "->" << p.dst;
    generated += p.generated;
    finished += p.delivered + p.dropped;
  }
  EXPECT_GT(generated, 5'000u);
  EXPECT_EQ(generated, finished);
}

TEST(SimInvariants, DeterministicAcrossRuns) {
  const SimResult a = run_single_hop(0.8, 8, 30.0, /*seed=*/42);
  const SimResult b = run_single_hop(0.8, 8, 30.0, /*seed=*/42);
  EXPECT_EQ(a.total_events, b.total_events);
  EXPECT_EQ(a.path(0, 1).delivered, b.path(0, 1).delivered);
  EXPECT_DOUBLE_EQ(a.path(0, 1).mean_delay_s, b.path(0, 1).mean_delay_s);
}

TEST(SimInvariants, SeedChangesRealization) {
  const SimResult a = run_single_hop(0.8, 8, 30.0, /*seed=*/1);
  const SimResult b = run_single_hop(0.8, 8, 30.0, /*seed=*/2);
  EXPECT_NE(a.path(0, 1).mean_delay_s, b.path(0, 1).mean_delay_s);
  // ... but the statistics agree (same distribution).
  EXPECT_NEAR(a.path(0, 1).mean_delay_s, b.path(0, 1).mean_delay_s,
              0.15 * a.path(0, 1).mean_delay_s);
}

TEST(SimInvariants, DelayAtLeastServiceAndPropagation) {
  topo::Topology t = topo::line(3, 1e6);
  t.set_link_prop_delay(0, 0.01);
  t.set_link_prop_delay(2, 0.02);  // 1->2 direction
  const topo::RoutingScheme rs = topo::hop_count_routing(t);
  topo::TrafficMatrix tm(3);
  tm.set(0, 2, 0.1e6);
  SimConfig cfg;
  cfg.window_s = 20.0;
  Simulator s(t, rs, tm, cfg);
  const SimResult res = s.run();
  const auto& p = res.path(0, 2);
  ASSERT_GT(p.delivered, 100u);
  EXPECT_GE(p.min_delay_s, 0.03);  // at least the propagation sum
}

// ---- multi-hop composition ----------------------------------------------------

TEST(SimComposition, LightlyLoadedLineSumsPerHopDelays) {
  // At low load the Kleinrock independence approximation is accurate:
  // mean end-to-end delay ~= hops * E[sojourn per hop].
  const double cap = 1e6, rho = 0.2, mu = cap / 8000.0;
  topo::Topology t = topo::line(4, cap);
  const topo::RoutingScheme rs = topo::hop_count_routing(t);
  topo::TrafficMatrix tm(4);
  tm.set(0, 3, rho * cap);
  SimConfig cfg;
  cfg.window_s = 120.0;
  cfg.warmup_s = 5.0;
  Simulator s(t, rs, tm, cfg);
  const SimResult res = s.run();
  const auto& p = res.path(0, 3);
  ASSERT_GT(p.delivered, 2'500u);  // 25 pkt/s x 120 s at rho=0.2
  const double per_hop = sim::mm1_mean_sojourn(rho * mu, mu);
  EXPECT_NEAR(p.mean_delay_s, 3 * per_hop, 0.10 * 3 * per_hop);
}

// ---- the paper's queue-size effect -------------------------------------------

TEST(QueueEffect, TinyQueuesTradeDelayForLoss) {
  // Under identical load, 1-packet queues have (a) far smaller delay
  // (no queueing wait) and (b) far larger loss than standard queues.
  // This is the signal the extended architecture learns from (§3).
  const SimResult tiny = run_single_hop(0.9, topo::kTinyQueuePackets, 120.0);
  const SimResult std_q =
      run_single_hop(0.9, topo::kStandardQueuePackets, 120.0);
  const auto& pt = tiny.path(0, 1);
  const auto& ps = std_q.path(0, 1);
  EXPECT_LT(pt.mean_delay_s, 0.4 * ps.mean_delay_s);
  EXPECT_GT(pt.loss_rate(), 10.0 * std::max(ps.loss_rate(), 1e-6));
}

TEST(QueueEffect, BottleneckNodeQueueShapesTransitPaths) {
  // line 0-1-2; only node 1's queue size changes; the 0->2 path through
  // node 1's output port must feel it.
  auto run = [](std::uint32_t k1) {
    topo::Topology t = topo::line(3, 1e6);
    t.set_queue_size(1, k1);
    const topo::RoutingScheme rs = topo::hop_count_routing(t);
    topo::TrafficMatrix tm(3);
    tm.set(0, 2, 0.85e6);
    tm.set(1, 2, 0.05e6);
    SimConfig cfg;
    cfg.window_s = 120.0;
    cfg.warmup_s = 5.0;
    Simulator s(t, rs, tm, cfg);
    return s.run();
  };
  const SimResult tiny = run(1);
  const SimResult std_q = run(32);
  EXPECT_LT(tiny.path(0, 2).mean_delay_s,
            0.7 * std_q.path(0, 2).mean_delay_s);
  EXPECT_GT(tiny.path(0, 2).loss_rate(),
            std_q.path(0, 2).loss_rate() + 0.01);
}

TEST(SimConfigValidation, BadInputsThrow) {
  const topo::Topology t = topo::line(2, 1e6);
  const topo::RoutingScheme rs = topo::hop_count_routing(t);
  topo::TrafficMatrix tm(2);
  tm.set(0, 1, 1e5);
  SimConfig cfg;
  cfg.window_s = 0.0;
  EXPECT_THROW(Simulator(t, rs, tm, cfg), std::invalid_argument);
  cfg.window_s = 1.0;
  cfg.mean_packet_bits = 0.0;
  EXPECT_THROW(Simulator(t, rs, tm, cfg), std::invalid_argument);
  topo::TrafficMatrix wrong(3);
  cfg.mean_packet_bits = 8000.0;
  EXPECT_THROW(Simulator(t, rs, wrong, cfg), std::invalid_argument);
}

TEST(SimDeterministicSizes, DeterministicPacketsReduceJitter) {
  // M/D/1 vs M/M/1: deterministic service halves queueing variance.
  const double cap = 1e6, rho = 0.7;
  auto run = [&](sim::PacketSizeDist dist) {
    topo::Topology t = topo::line(2, cap);
    t.set_all_queue_sizes(200);
    const topo::RoutingScheme rs = topo::hop_count_routing(t);
    topo::TrafficMatrix tm(2);
    tm.set(0, 1, rho * cap);
    SimConfig cfg;
    cfg.window_s = 120.0;
    cfg.warmup_s = 5.0;
    cfg.size_dist = dist;
    Simulator s(t, rs, tm, cfg);
    return s.run().path(0, 1);  // PathStats returned by value: safe
  };
  const auto exp_p = run(sim::PacketSizeDist::kExponential);
  const auto det_p = run(sim::PacketSizeDist::kDeterministic);
  EXPECT_LT(det_p.mean_delay_s, exp_p.mean_delay_s);   // M/D/1 < M/M/1
  EXPECT_LT(det_p.jitter_s2, exp_p.jitter_s2);
}

TEST(SimResultApi, UnknownPairThrows) {
  const SimResult res = run_single_hop(0.5, 8, 10.0);
  EXPECT_NO_THROW((void)res.path(0, 1));
  EXPECT_THROW((void)res.path(1, 0), std::out_of_range);
}

}  // namespace
