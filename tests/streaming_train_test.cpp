// Streaming training/eval equivalence (DESIGN.md §D): consuming a
// sharded on-disk store through SampleSource must reproduce the
// in-memory pipeline bit for bit — same train-loss history, same final
// weights, same eval loss, same scaler moments, same predictions —
// while never materializing the whole dataset.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <memory>
#include <vector>

#include "core/routenet_ext.hpp"
#include "core/trainer.hpp"
#include "data/generator.hpp"
#include "data/shards.hpp"
#include "data/source.hpp"
#include "eval/metrics.hpp"
#include "topo/zoo.hpp"

namespace {

using namespace rnx;
using data::Dataset;

class StreamingTrainTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kSamples = 6;
  static constexpr std::size_t kPerShard = 2;

  StreamingTrainTest() {
    // PID-suffixed: parallel ctest processes must not share (and
    // remove_all) each other's store.
    dir_ = std::filesystem::temp_directory_path() /
           ("rnx_streaming_train." + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    data::GeneratorConfig cfg;
    cfg.target_packets = 5'000;
    ds_ = std::make_unique<Dataset>(
        data::generate_dataset(topo::ring(4), kSamples, cfg, 97));
    data::ShardWriter writer(manifest(), kPerShard, 97,
                             data::config_digest(cfg));
    for (const auto& s : ds_->samples()) writer.add(s);
    (void)writer.finish();
    scaler_ = std::make_unique<data::Scaler>(
        data::Scaler::fit(ds_->samples(), 10));
  }
  ~StreamingTrainTest() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::string manifest() const {
    return (dir_ / "train.rnxm").string();
  }

  [[nodiscard]] static core::TrainConfig train_config(std::size_t threads) {
    core::TrainConfig tc;
    tc.epochs = 3;
    tc.batch_samples = 4;  // trailing partial batch included
    tc.threads = threads;
    tc.verbose = false;
    return tc;
  }

  [[nodiscard]] static std::unique_ptr<core::Model> fresh_model() {
    core::ModelConfig mc;
    mc.state_dim = 8;
    mc.readout_hidden = 12;
    mc.iterations = 2;
    mc.init_seed = 5;
    return std::make_unique<core::ExtendedRouteNet>(mc);
  }

  static void expect_identical_weights(const core::Model& a,
                                       const core::Model& b) {
    const auto pa = a.named_params();
    const auto pb = b.named_params();
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t i = 0; i < pa.size(); ++i) {
      const auto& ta = pa[i].second.value();
      const auto& tb = pb[i].second.value();
      ASSERT_EQ(ta.size(), tb.size());
      for (std::size_t j = 0; j < ta.size(); ++j)
        ASSERT_EQ(ta.flat()[j], tb.flat()[j])
            << pa[i].first << "[" << j << "]";
    }
  }

  std::filesystem::path dir_;
  std::unique_ptr<Dataset> ds_;
  std::unique_ptr<data::Scaler> scaler_;
};

TEST_F(StreamingTrainTest, StreamedFitEqualsInMemoryFitBitwise) {
  // Same sample sequence through both paths: fit_stream over the
  // in-memory source vs. fit_stream over the sharded store.
  const auto model_mem = fresh_model();
  {
    data::DatasetSource src(*ds_);
    core::Trainer trainer(*model_mem, train_config(1));
    const auto hist = trainer.fit_stream(src, *scaler_);
    ASSERT_EQ(hist.size(), 3u);
  }
  const auto model_stream = fresh_model();
  std::vector<core::EpochRecord> stream_hist;
  {
    data::StreamingShardSource src(manifest(), /*prefetch=*/2);
    core::Trainer trainer(*model_stream, train_config(1));
    stream_hist = trainer.fit_stream(src, *scaler_);
  }
  expect_identical_weights(*model_mem, *model_stream);

  // And the parallel streaming path agrees with the serial one.
  const auto model_par = fresh_model();
  {
    data::StreamingShardSource src(manifest(), /*prefetch=*/2);
    core::Trainer trainer(*model_par, train_config(4));
    const auto hist = trainer.fit_stream(src, *scaler_);
    ASSERT_EQ(hist.size(), stream_hist.size());
    for (std::size_t e = 0; e < hist.size(); ++e)
      EXPECT_EQ(hist[e].train_loss, stream_hist[e].train_loss);
  }
  expect_identical_weights(*model_mem, *model_par);
}

TEST_F(StreamingTrainTest, StreamedTrainLossEqualsInMemoryTrainLoss) {
  const auto model_a = fresh_model();
  const auto model_b = fresh_model();
  core::Trainer trainer_a(*model_a, train_config(1));
  core::Trainer trainer_b(*model_b, train_config(1));
  data::DatasetSource mem(*ds_);
  data::StreamingShardSource stream(manifest(), 3);
  const auto hist_mem = trainer_a.fit_stream(mem, *scaler_);
  const auto hist_stream = trainer_b.fit_stream(stream, *scaler_);
  ASSERT_EQ(hist_mem.size(), hist_stream.size());
  for (std::size_t e = 0; e < hist_mem.size(); ++e)
    EXPECT_EQ(hist_mem[e].train_loss, hist_stream[e].train_loss)
        << "epoch " << e;
}

TEST_F(StreamingTrainTest, StreamedEvaluateLossEqualsInMemory) {
  const auto model = fresh_model();
  for (const std::size_t threads : {1u, 2u, 8u}) {
    core::Trainer trainer(*model, train_config(threads));
    const double mem_loss = trainer.evaluate_loss(*ds_, *scaler_);
    data::StreamingShardSource src(manifest(), 2);
    const double stream_loss = trainer.evaluate_loss(src, *scaler_);
    EXPECT_EQ(mem_loss, stream_loss) << "threads=" << threads;
  }
}

TEST_F(StreamingTrainTest, ScalerFitFromSourceMatchesInMemory) {
  data::StreamingShardSource src(manifest(), 2);
  const data::Scaler streamed = data::Scaler::fit(src, 10);
  const auto expect_moments = [](const data::Moments& a,
                                 const data::Moments& b) {
    EXPECT_EQ(a.mean, b.mean);
    EXPECT_EQ(a.stddev, b.stddev);
  };
  expect_moments(streamed.traffic_moments(), scaler_->traffic_moments());
  expect_moments(streamed.capacity_moments(), scaler_->capacity_moments());
  expect_moments(streamed.queue_moments(), scaler_->queue_moments());
  expect_moments(streamed.log_delay_moments(),
                 scaler_->log_delay_moments());
  expect_moments(streamed.log_jitter_moments(),
                 scaler_->log_jitter_moments());
}

TEST_F(StreamingTrainTest, PredictSourceMatchesPredictDataset) {
  const auto model = fresh_model();
  const auto pp_mem = eval::predict_dataset(*model, *ds_, *scaler_, 10);
  data::StreamingShardSource src(manifest(), 2);
  const auto pp_stream = eval::predict_source(*model, src, *scaler_, 10);
  ASSERT_EQ(pp_stream.size(), pp_mem.size());
  for (std::size_t i = 0; i < pp_mem.size(); ++i) {
    EXPECT_EQ(pp_stream.truth[i], pp_mem.truth[i]);
    EXPECT_EQ(pp_stream.pred[i], pp_mem.pred[i]);
  }
}

TEST_F(StreamingTrainTest, PredictSourcePerSampleCallbackCoversAllPaths) {
  const auto model = fresh_model();
  std::size_t samples_seen = 0, paths_seen = 0;
  bool in_order = true;
  data::StreamingShardSource src(manifest(), 2);
  (void)eval::predict_source(
      *model, src, *scaler_, 10, core::PredictionTarget::kDelay, nullptr,
      [&](std::size_t i, const data::Sample& s, const nn::Tensor& pred) {
        in_order &= i == samples_seen;
        ++samples_seen;
        paths_seen += s.paths.size();
        EXPECT_EQ(pred.rows(), s.paths.size());
      });
  EXPECT_TRUE(in_order);
  EXPECT_EQ(samples_seen, kSamples);
  EXPECT_EQ(paths_seen, ds_->total_paths());
}

TEST_F(StreamingTrainTest, FitStreamKeepsModelCacheDetachmentScoped) {
  // After a streaming fit, the model's plan-cache attachment must be
  // restored (here: none), and a subsequent in-memory fit still works.
  const auto model = fresh_model();
  core::Trainer trainer(*model, train_config(1));
  {
    data::StreamingShardSource src(manifest(), 2);
    (void)trainer.fit_stream(src, *scaler_);
  }
  EXPECT_EQ(model->plan_cache(), nullptr);
  (void)trainer.fit(*ds_, *scaler_);
  EXPECT_EQ(model->plan_cache(), nullptr);
}

}  // namespace
