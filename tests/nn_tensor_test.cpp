// Tests for the dense tensor and its matmul kernels.
#include <gtest/gtest.h>

#include "nn/tensor.hpp"
#include "util/rng.hpp"

namespace {

using rnx::nn::Tensor;
using rnx::util::RngStream;

Tensor random_tensor(std::size_t r, std::size_t c, RngStream& rng) {
  Tensor t(r, c);
  for (auto& x : t.flat()) x = rng.normal();
  return t;
}

// Naive triple-loop reference.
Tensor ref_matmul(const Tensor& a, const Tensor& b) {
  Tensor c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) s += a(i, k) * b(k, j);
      c(i, j) = s;
    }
  return c;
}

void expect_tensor_near(const Tensor& a, const Tensor& b, double tol = 1e-12) {
  ASSERT_TRUE(a.same_shape(b));
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      EXPECT_NEAR(a(i, j), b(i, j), tol) << "at (" << i << "," << j << ")";
}

TEST(Tensor, ConstructionAndAccess) {
  Tensor t(2, 3);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 3u);
  EXPECT_EQ(t.size(), 6u);
  for (const double x : t.flat()) EXPECT_EQ(x, 0.0);
  t(1, 2) = 5.0;
  EXPECT_EQ(t.at(1, 2), 5.0);
  EXPECT_THROW((void)t.at(2, 0), std::out_of_range);
  EXPECT_THROW((void)t.at(0, 3), std::out_of_range);
}

TEST(Tensor, FromDataValidatesSize) {
  EXPECT_NO_THROW(Tensor(2, 2, {1, 2, 3, 4}));
  EXPECT_THROW(Tensor(2, 2, {1, 2, 3}), std::invalid_argument);
}

TEST(Tensor, ScalarItem) {
  EXPECT_DOUBLE_EQ(Tensor::scalar(3.5).item(), 3.5);
  EXPECT_THROW((void)Tensor(2, 1).item(), std::logic_error);
}

TEST(Tensor, FactoryHelpers) {
  const Tensor f = Tensor::full(2, 2, 7.0);
  for (const double x : f.flat()) EXPECT_EQ(x, 7.0);
  const Tensor z = Tensor::zeros(3, 1);
  EXPECT_EQ(z.rows(), 3u);
}

TEST(Tensor, InplaceOps) {
  Tensor a(1, 3, {1, 2, 3});
  const Tensor b(1, 3, {10, 20, 30});
  a.add_inplace(b);
  expect_tensor_near(a, Tensor(1, 3, {11, 22, 33}));
  a.axpy_inplace(-1.0, b);
  expect_tensor_near(a, Tensor(1, 3, {1, 2, 3}));
  a.scale_inplace(2.0);
  expect_tensor_near(a, Tensor(1, 3, {2, 4, 6}));
  EXPECT_DOUBLE_EQ(a.squared_norm(), 4 + 16 + 36);
  Tensor wrong(1, 2);
  EXPECT_THROW(a.add_inplace(wrong), std::invalid_argument);
}

TEST(Tensor, RowSpanIsView) {
  Tensor t(2, 2, {1, 2, 3, 4});
  auto row = t.row(1);
  row[0] = 9.0;
  EXPECT_DOUBLE_EQ(t(1, 0), 9.0);
}

// Property sweep: kernels vs naive reference across shapes.
class MatmulProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatmulProperty, MatchesReference) {
  const auto [n, k, m] = GetParam();
  RngStream rng(static_cast<std::uint64_t>(n * 10000 + k * 100 + m));
  const Tensor a = random_tensor(n, k, rng);
  const Tensor b = random_tensor(k, m, rng);
  expect_tensor_near(rnx::nn::matmul(a, b), ref_matmul(a, b), 1e-10);
}

TEST_P(MatmulProperty, TransposedVariantsMatchReference) {
  const auto [n, k, m] = GetParam();
  RngStream rng(static_cast<std::uint64_t>(n + k + m));
  // matmul_tn(a, b) = a^T b with a: k x n.
  const Tensor a_t = random_tensor(k, n, rng);
  const Tensor b = random_tensor(k, m, rng);
  Tensor a(n, k);
  for (std::size_t i = 0; i < a_t.rows(); ++i)
    for (std::size_t j = 0; j < a_t.cols(); ++j) a(j, i) = a_t(i, j);
  expect_tensor_near(rnx::nn::matmul_tn(a_t, b), ref_matmul(a, b), 1e-10);

  // matmul_nt(x, y) = x y^T with y: m x k.
  const Tensor x = random_tensor(n, k, rng);
  const Tensor y_t = random_tensor(m, k, rng);
  Tensor y(k, m);
  for (std::size_t i = 0; i < y_t.rows(); ++i)
    for (std::size_t j = 0; j < y_t.cols(); ++j) y(j, i) = y_t(i, j);
  expect_tensor_near(rnx::nn::matmul_nt(x, y_t), ref_matmul(x, y), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatmulProperty,
    ::testing::Values(std::tuple{1, 1, 1}, std::tuple{2, 3, 4},
                      std::tuple{5, 1, 7}, std::tuple{16, 16, 16},
                      std::tuple{33, 7, 12}, std::tuple{64, 17, 3}));

TEST(Matmul, AccumulatingVariantsAddIntoC) {
  RngStream rng(5);
  const Tensor a = random_tensor(3, 4, rng);
  const Tensor b = random_tensor(4, 2, rng);
  Tensor c = Tensor::full(3, 2, 1.0);
  rnx::nn::matmul_acc(c, a, b);
  Tensor expected = ref_matmul(a, b);
  for (auto& x : expected.flat()) x += 1.0;
  expect_tensor_near(c, expected, 1e-10);
}

TEST(Matmul, ShapeMismatchThrows) {
  const Tensor a(2, 3), b(4, 2), c(2, 2);
  EXPECT_THROW(rnx::nn::matmul(a, b), std::invalid_argument);
  Tensor bad_out(3, 2);
  const Tensor b2(3, 2);
  EXPECT_THROW(rnx::nn::matmul_acc(bad_out, a, b2), std::invalid_argument);
}

}  // namespace
