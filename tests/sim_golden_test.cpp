// Golden regression pin for the Scheduler/TrafficModel refactor
// (DESIGN.md §S).
//
// The scenario engine extracted the output-port logic of the seed
// simulator into sim::Scheduler and the arrival sampling into
// sim::ArrivalProcess.  The default scenario (drop-tail FIFO + Poisson,
// one class) must remain *bitwise* identical to the pre-refactor
// simulator: same event count, same per-path counters, same delay
// moments to the last ulp.  The constants below were captured from the
// seed implementation (PR 2 tree, commit 2fa754f) with the exact
// configurations reproduced here; a mismatch means the refactor changed
// default behavior and every regenerated dataset silently shifted.
//
// The dataset-generator pin plays the same role one layer up: the
// generator's RNG draw sequence must not change for default configs, or
// cached/regenerated datasets stop being reproducible.
#include <gtest/gtest.h>

#include <cstdint>
#include <string_view>

#include "data/generator.hpp"
#include "sim/simulator.hpp"
#include "topo/traffic.hpp"
#include "topo/zoo.hpp"
#include "util/rng.hpp"

namespace {

using namespace rnx;

std::uint64_t fnv1a64_bytes(std::uint64_t h, const void* data,
                            std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

// Order- and layout-stable digest over every per-path and per-link
// statistic (field by field, not struct dumps, so padding never leaks in).
std::uint64_t digest(const sim::SimResult& res) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const auto& p : res.paths) {
    h = fnv1a64_bytes(h, &p.src, sizeof(p.src));
    h = fnv1a64_bytes(h, &p.dst, sizeof(p.dst));
    h = fnv1a64_bytes(h, &p.generated, sizeof(p.generated));
    h = fnv1a64_bytes(h, &p.delivered, sizeof(p.delivered));
    h = fnv1a64_bytes(h, &p.dropped, sizeof(p.dropped));
    h = fnv1a64_bytes(h, &p.mean_delay_s, sizeof(p.mean_delay_s));
    h = fnv1a64_bytes(h, &p.jitter_s2, sizeof(p.jitter_s2));
    h = fnv1a64_bytes(h, &p.min_delay_s, sizeof(p.min_delay_s));
    h = fnv1a64_bytes(h, &p.max_delay_s, sizeof(p.max_delay_s));
  }
  for (const auto& l : res.links) {
    h = fnv1a64_bytes(h, &l.arrivals, sizeof(l.arrivals));
    h = fnv1a64_bytes(h, &l.drops, sizeof(l.drops));
    h = fnv1a64_bytes(h, &l.utilization, sizeof(l.utilization));
    h = fnv1a64_bytes(h, &l.mean_queue_pkts, sizeof(l.mean_queue_pkts));
  }
  return h;
}

TEST(SimGolden, MeshedTopologyBitwiseIdenticalToSeed) {
  topo::Topology t = topo::nsfnet();
  util::RngStream rng(3);
  topo::randomize_queue_sizes(t, 0.5, rng);
  const topo::RoutingScheme rs = topo::hop_count_routing(t);
  topo::TrafficMatrix tm = topo::uniform_traffic(t.num_nodes(), 1.0, 2.0, rng);
  topo::scale_to_max_utilization(tm, t, rs, 0.9);
  sim::SimConfig cfg;
  cfg.window_s = 0.5;
  cfg.warmup_s = 0.05;
  cfg.seed = 7;
  sim::Simulator s(t, rs, tm, cfg);
  const sim::SimResult res = s.run();

  EXPECT_EQ(res.total_events, 19371u);
  EXPECT_EQ(digest(res), 0xfa8faac927359f1cull);
  const auto& p0 = res.paths[0];
  EXPECT_EQ(p0.src, 0u);
  EXPECT_EQ(p0.dst, 1u);
  EXPECT_EQ(p0.generated, 46u);
  EXPECT_EQ(p0.delivered, 46u);
  EXPECT_EQ(p0.dropped, 0u);
  EXPECT_EQ(p0.mean_delay_s, 0x1.ae26139869d8bp-10);
  EXPECT_EQ(p0.jitter_s2, 0x1.7309d353899e1p-19);
}

TEST(SimGolden, SingleHopBitwiseIdenticalToSeed) {
  topo::Topology t = topo::line(2, 1e6);
  t.set_all_queue_sizes(8);
  const topo::RoutingScheme rs = topo::hop_count_routing(t);
  topo::TrafficMatrix tm(2);
  tm.set(0, 1, 0.8e6);
  sim::SimConfig cfg;
  cfg.window_s = 30.0;
  cfg.warmup_s = 2.0;
  cfg.seed = 42;
  sim::Simulator s(t, rs, tm, cfg);
  const sim::SimResult res = s.run();

  EXPECT_EQ(res.total_events, 6173u);
  EXPECT_EQ(digest(res), 0x56778cd61427e951ull);
  const auto& p = res.paths[0];
  EXPECT_EQ(p.generated, 2949u);
  EXPECT_EQ(p.delivered, 2852u);
  EXPECT_EQ(p.dropped, 97u);
  EXPECT_EQ(p.mean_delay_s, 0x1.b99c207d44099p-6);
  EXPECT_EQ(p.jitter_s2, 0x1.1147642c00799p-11);
  EXPECT_EQ(p.min_delay_s, 0x1.0d95f4acp-18);
  EXPECT_EQ(p.max_delay_s, 0x1.3928d99ccbc8p-3);
}

TEST(SimGolden, DefaultGeneratorDrawSequenceUnchanged) {
  data::GeneratorConfig cfg;
  cfg.target_packets = 5'000;
  const auto ds = data::generate_dataset(topo::ring(4), 2, cfg, 7);
  ASSERT_EQ(ds.size(), 2u);
  EXPECT_EQ(ds[0].paths[0].traffic_bps, 0x1.9543f8799503ep+22);
  EXPECT_EQ(ds[0].paths[0].mean_delay_s, 0x1.07e75d4ccd49cp-12);
  EXPECT_EQ(ds[0].paths[0].jitter_s2, 0x1.18b5ef4e87e8cp-24);
  EXPECT_EQ(ds[0].queue_pkts[0], 32u);
  EXPECT_EQ(ds[1].paths[0].traffic_bps, 0x1.110633023ab36p+19);
  EXPECT_EQ(ds[1].paths[0].mean_delay_s, 0x1.d68619ac434bdp-13);
  EXPECT_EQ(ds[1].paths[0].jitter_s2, 0x1.89dce49b16ca2p-25);
  // The default scenario is recorded with every sample now.
  EXPECT_TRUE(ds[0].scenario_recorded);
  EXPECT_EQ(ds[0].scenario, sim::ScenarioConfig{});
}

}  // namespace
