// Tests for src/topo/routing: Dijkstra vs exhaustive reference, routing
// scheme validation, Yen's k-shortest paths.  Property-style suites sweep
// random graphs (TEST_P).
#include <gtest/gtest.h>

#include <limits>

#include "topo/routing.hpp"
#include "topo/zoo.hpp"

namespace {

using namespace rnx::topo;
using rnx::util::RngStream;

double path_weight(const Path& p, const std::vector<double>& w) {
  double s = 0.0;
  for (const auto l : p.links) s += w[l];
  return s;
}

// Bellman-Ford reference distances (handles any nonnegative weights).
std::vector<double> reference_distances(const Graph& g,
                                        const std::vector<double>& w,
                                        NodeId src) {
  std::vector<double> dist(g.num_nodes(),
                           std::numeric_limits<double>::infinity());
  dist[src] = 0.0;
  for (std::size_t round = 0; round + 1 < g.num_nodes(); ++round)
    for (LinkId l = 0; l < g.num_links(); ++l) {
      const auto& lk = g.link(l);
      if (dist[lk.src] + w[l] < dist[lk.dst])
        dist[lk.dst] = dist[lk.src] + w[l];
    }
  return dist;
}

void check_path_valid(const Graph& g, const Path& p, NodeId src, NodeId dst) {
  ASSERT_GE(p.nodes.size(), 2u);
  EXPECT_EQ(p.nodes.front(), src);
  EXPECT_EQ(p.nodes.back(), dst);
  ASSERT_EQ(p.links.size() + 1, p.nodes.size());
  for (std::size_t i = 0; i < p.links.size(); ++i) {
    EXPECT_EQ(g.link(p.links[i]).src, p.nodes[i]);
    EXPECT_EQ(g.link(p.links[i]).dst, p.nodes[i + 1]);
  }
}

// ---- shortest_path ---------------------------------------------------------

TEST(ShortestPath, TrivialLine) {
  const Topology t = line(4);
  const std::vector<double> w(t.num_links(), 1.0);
  const Path p = shortest_path(t.graph(), w, 0, 3);
  check_path_valid(t.graph(), p, 0, 3);
  EXPECT_EQ(p.hops(), 3u);
}

TEST(ShortestPath, PrefersCheaperDetour) {
  // 0-1-2 with expensive direct 0->2.
  Graph g(3);
  const LinkId l01 = g.add_link(0, 1);
  const LinkId l12 = g.add_link(1, 2);
  const LinkId l02 = g.add_link(0, 2);
  std::vector<double> w(3);
  w[l01] = 1.0;
  w[l12] = 1.0;
  w[l02] = 5.0;
  const Path p = shortest_path(g, w, 0, 2);
  EXPECT_EQ(p.hops(), 2u);
  EXPECT_NEAR(path_weight(p, w), 2.0, 1e-12);
}

TEST(ShortestPath, UnreachableThrows) {
  Graph g(3);
  g.add_link(0, 1);  // no path to 2
  const std::vector<double> w(1, 1.0);
  EXPECT_THROW(shortest_path(g, w, 0, 2), std::runtime_error);
}

TEST(ShortestPath, SrcEqualsDstThrows) {
  const Topology t = line(3);
  const std::vector<double> w(t.num_links(), 1.0);
  EXPECT_THROW(shortest_path(t.graph(), w, 1, 1), std::invalid_argument);
}

TEST(ShortestPath, WeightCountMismatchThrows) {
  const Topology t = line(3);
  const std::vector<double> w(2, 1.0);  // needs 4
  EXPECT_THROW(shortest_path(t.graph(), w, 0, 2), std::invalid_argument);
}

// Property suite: Dijkstra distance equals Bellman-Ford on random graphs.
class DijkstraProperty : public ::testing::TestWithParam<int> {};

TEST_P(DijkstraProperty, MatchesBellmanFordOnRandomGraph) {
  RngStream rng(static_cast<std::uint64_t>(GetParam()));
  const Topology t = random_connected(10, 18, rng);
  const auto w = random_link_weights(t, rng, 0.5, 4.0);
  for (NodeId s = 0; s < t.num_nodes(); ++s) {
    const auto ref = reference_distances(t.graph(), w, s);
    for (NodeId d = 0; d < t.num_nodes(); ++d) {
      if (s == d) continue;
      const Path p = shortest_path(t.graph(), w, s, d);
      check_path_valid(t.graph(), p, s, d);
      EXPECT_NEAR(path_weight(p, w), ref[d], 1e-9)
          << "pair " << s << "->" << d;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DijkstraProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---- RoutingScheme -----------------------------------------------------------

TEST(RoutingScheme, AllPairsInstalled) {
  const Topology t = geant2();
  const RoutingScheme rs = hop_count_routing(t);
  EXPECT_EQ(rs.pairs().size(), 24u * 23u);
  for (const auto& [s, d] : rs.pairs()) {
    const Path& p = rs.path(s, d);
    check_path_valid(t.graph(), p, s, d);
  }
}

TEST(RoutingScheme, RejectsMalformedPath) {
  RoutingScheme rs(3);
  Path bad;
  bad.nodes = {0, 2};  // missing link record
  EXPECT_THROW(rs.set_path(0, 2, bad), std::invalid_argument);
  EXPECT_THROW(rs.set_path(0, 0, Path{}), std::invalid_argument);
  EXPECT_THROW((void)rs.path(0, 2), std::out_of_range);
  EXPECT_FALSE(rs.has_path(0, 2));
}

TEST(RoutingScheme, HopCountPathsAreMinimal) {
  const Topology t = nsfnet();
  const RoutingScheme rs = hop_count_routing(t);
  const std::vector<double> unit(t.num_links(), 1.0);
  for (const auto& [s, d] : rs.pairs()) {
    const auto ref = reference_distances(t.graph(), unit, s);
    EXPECT_NEAR(static_cast<double>(rs.path(s, d).hops()), ref[d], 1e-12);
  }
}

TEST(RoutingScheme, RandomWeightsChangeRouting) {
  const Topology t = geant2();
  RngStream r1(100), r2(200);
  const RoutingScheme a =
      shortest_path_routing(t, random_link_weights(t, r1));
  const RoutingScheme b =
      shortest_path_routing(t, random_link_weights(t, r2));
  std::size_t differing = 0;
  for (const auto& [s, d] : a.pairs())
    if (a.path(s, d).nodes != b.path(s, d).nodes) ++differing;
  EXPECT_GT(differing, 20u);  // routing diversity across samples
}

TEST(RoutingScheme, PairsAreSrcMajorOrdered) {
  const Topology t = line(3);
  const RoutingScheme rs = hop_count_routing(t);
  const auto pairs = rs.pairs();
  ASSERT_EQ(pairs.size(), 6u);
  EXPECT_EQ(pairs[0], (std::pair<NodeId, NodeId>{0, 1}));
  EXPECT_EQ(pairs[1], (std::pair<NodeId, NodeId>{0, 2}));
  EXPECT_EQ(pairs[5], (std::pair<NodeId, NodeId>{2, 1}));
}

// ---- Yen k-shortest -----------------------------------------------------------

TEST(KShortest, FirstEqualsDijkstra) {
  const Topology t = geant2();
  RngStream rng(17);
  const auto w = random_link_weights(t, rng);
  const auto ks = k_shortest_paths(t.graph(), w, 0, 13, 4);
  ASSERT_FALSE(ks.empty());
  const Path sp = shortest_path(t.graph(), w, 0, 13);
  EXPECT_EQ(ks[0].nodes, sp.nodes);
}

TEST(KShortest, NondecreasingWeightsAndDistinct) {
  const Topology t = geant2();
  RngStream rng(19);
  const std::vector<double> wv = random_link_weights(t, rng);
  const auto ks = k_shortest_paths(t.graph(), wv, 2, 21, 5);
  ASSERT_GE(ks.size(), 2u);
  for (std::size_t i = 1; i < ks.size(); ++i) {
    EXPECT_GE(path_weight(ks[i], wv) + 1e-12, path_weight(ks[i - 1], wv));
    for (std::size_t j = 0; j < i; ++j) EXPECT_NE(ks[i].nodes, ks[j].nodes);
  }
}

TEST(KShortest, PathsAreLoopFreeAndValid) {
  const Topology t = nsfnet();
  RngStream rng(23);
  const auto w = random_link_weights(t, rng);
  for (const auto& p : k_shortest_paths(t.graph(), w, 1, 12, 6)) {
    check_path_valid(t.graph(), p, 1, 12);
    std::set<NodeId> seen(p.nodes.begin(), p.nodes.end());
    EXPECT_EQ(seen.size(), p.nodes.size()) << "loop in path";
  }
}

TEST(KShortest, LimitedGraphReturnsFewer) {
  const Topology t = line(3);  // exactly one simple path 0->2
  const std::vector<double> w(t.num_links(), 1.0);
  const auto ks = k_shortest_paths(t.graph(), w, 0, 2, 5);
  EXPECT_EQ(ks.size(), 1u);
}

TEST(KShortest, KZeroEmpty) {
  const Topology t = line(3);
  const std::vector<double> w(t.num_links(), 1.0);
  EXPECT_TRUE(k_shortest_paths(t.graph(), w, 0, 2, 0).empty());
}

}  // namespace
