// Jitter as a regression target (paper abstract: RouteNet estimates
// "delay or jitter").  Verifies the label plumbing and that the extended
// model actually learns jitter on a small dataset.
#include <gtest/gtest.h>

#include "core/plan.hpp"
#include "core/routenet_ext.hpp"
#include "core/trainer.hpp"
#include "data/generator.hpp"
#include "eval/metrics.hpp"
#include "topo/zoo.hpp"

namespace {

using namespace rnx;

data::Dataset jitter_dataset(std::size_t n, std::uint64_t seed) {
  data::GeneratorConfig cfg;
  cfg.target_packets = 20'000;
  cfg.util_lo = 0.6;
  cfg.util_hi = 0.95;
  return data::Dataset(data::generate_dataset(topo::ring(5), n, cfg, seed));
}

TEST(Jitter, ScalerRoundTrips) {
  const data::Dataset ds = jitter_dataset(4, 3);
  const data::Scaler sc = data::Scaler::fit(ds.samples());
  for (const double j : {1e-8, 1e-6, 1e-4})
    EXPECT_NEAR(sc.target_to_jitter(sc.jitter_to_target(j)), j, 1e-15);
  EXPECT_THROW((void)sc.jitter_to_target(0.0), std::invalid_argument);
  // Jitter statistics are distinct from delay statistics.
  EXPECT_NE(sc.log_jitter_moments().mean, sc.log_delay_moments().mean);
}

TEST(Jitter, ValidRowsUseJitterLabel) {
  data::Dataset ds = jitter_dataset(1, 5);
  data::Sample s = ds[0];
  s.paths[0].jitter_s2 = 0.0;  // delay label fine, jitter label unusable
  const auto delay_rows =
      core::valid_label_rows(s, 1, core::PredictionTarget::kDelay);
  const auto jitter_rows =
      core::valid_label_rows(s, 1, core::PredictionTarget::kJitter);
  EXPECT_EQ(jitter_rows.size() + 1, delay_rows.size());
}

TEST(Jitter, TrainingLearnsJitter) {
  const data::Dataset all = jitter_dataset(40, 7);
  const auto [test, train] = all.split(8);
  const data::Scaler sc = data::Scaler::fit(train.samples());
  core::ModelConfig mc;
  mc.state_dim = 10;
  mc.iterations = 3;
  core::ExtendedRouteNet m(mc);
  core::TrainConfig tc;
  tc.epochs = 25;
  tc.batch_samples = 2;
  tc.lr = 3e-3;
  tc.target = core::PredictionTarget::kJitter;
  tc.verbose = false;
  core::Trainer trainer(m, tc);
  const auto history = trainer.fit(train, sc);
  EXPECT_LT(history.back().train_loss, 0.6 * history.front().train_loss);

  const auto pp = eval::predict_dataset(m, test, sc, 10,
                                        core::PredictionTarget::kJitter);
  ASSERT_GT(pp.size(), 50u);
  const auto s = eval::summarize(pp);
  EXPECT_GT(s.pearson, 0.5);  // clearly predictive of jitter
  for (const double p : pp.pred) EXPECT_GT(p, 0.0);
}

TEST(Jitter, DelayTargetUnaffectedByPlumbing) {
  // Default-target behaviour must be byte-identical to the delay path.
  const data::Dataset ds = jitter_dataset(2, 9);
  const data::Scaler sc = data::Scaler::fit(ds.samples());
  core::ModelConfig mc;
  mc.state_dim = 8;
  mc.iterations = 2;
  const core::ExtendedRouteNet m(mc);
  const nn::Var a = core::Trainer::sample_loss(m, ds[0], sc, 10);
  const nn::Var b = core::Trainer::sample_loss(
      m, ds[0], sc, 10, core::PredictionTarget::kDelay);
  EXPECT_DOUBLE_EQ(a.value().item(), b.value().item());
}

}  // namespace
