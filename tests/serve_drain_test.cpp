// Serving degradation rig (DESIGN.md §R): per-request deadlines,
// cooperative cancellation, graceful drain, and hot bundle reload —
// asserted exactly on the scripted clock wherever possible, with one
// real-clock threaded test pinning only schedule-independent facts
// (zero lost futures, conservation laws).
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <span>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/model.hpp"
#include "data/dataset.hpp"
#include "data/generator.hpp"
#include "serve/errors.hpp"
#include "serve/inference.hpp"
#include "serve/registry.hpp"
#include "serve/scheduler.hpp"
#include "topo/zoo.hpp"
#include "util/log.hpp"

namespace {

using namespace rnx;
using std::chrono::microseconds;

const data::Dataset& test_dataset() {
  static const data::Dataset ds = [] {
    util::set_log_level(util::LogLevel::kWarn);
    data::GeneratorConfig gen;
    gen.target_packets = 20'000;
    return data::Dataset(data::generate_dataset(topo::nsfnet(), 4, gen, 17));
  }();
  return ds;
}

serve::ModelBundle make_bundle(std::uint64_t init_seed = 5) {
  core::ModelConfig mc;
  mc.state_dim = 8;
  mc.readout_hidden = 12;
  mc.iterations = 2;
  mc.init_seed = init_seed;
  serve::ModelBundle b;
  b.model = core::make_model(core::ModelKind::kExtended, mc);
  b.scaler = data::Scaler::fit(test_dataset().samples(), 5);
  b.target = core::PredictionTarget::kDelay;
  b.min_delivered = 5;
  return b;
}

struct ScriptedClock {
  std::chrono::steady_clock::time_point t{};
  void advance_us(std::int64_t us) { t += microseconds(us); }
  [[nodiscard]] auto fn() {
    return [this] { return t; };
  }
};

serve::SchedulerConfig manual_cfg(ScriptedClock& clock,
                                  std::size_t depth = 64,
                                  std::size_t max_batch = 8,
                                  std::int64_t linger_us = 100) {
  serve::SchedulerConfig cfg;
  cfg.max_queue_depth = depth;
  cfg.max_batch_samples = max_batch;
  cfg.max_linger = microseconds(linger_us);
  cfg.manual_drain = true;
  cfg.now = clock.fn();
  return cfg;
}

std::span<const data::Sample> one(std::size_t i) {
  return {&test_dataset()[i], 1};
}

serve::SubmitOptions with_deadline(std::int64_t us) {
  serve::SubmitOptions opts;
  opts.deadline = microseconds(us);
  return opts;
}

// ---- deadlines ------------------------------------------------------------

TEST(ServeDeadline, ExpiryResolvesTypedWithoutPayingTheForward) {
  const serve::InferenceEngine engine(make_bundle());
  ScriptedClock clock;
  serve::BatchScheduler sched(manual_cfg(clock));

  serve::Submitted sub = sched.submit(engine, one(0), with_deadline(50));
  ASSERT_TRUE(sub.admitted());
  clock.advance_us(49);
  EXPECT_EQ(sched.pump(), 0u);  // one microsecond early: still live
  clock.advance_us(1);
  EXPECT_EQ(sched.pump(), 0u);  // expired: reaped, no batch executed
  EXPECT_THROW((void)sub.result.get(), serve::DeadlineExceededError);

  const serve::ServeStats st = sched.stats();
  EXPECT_EQ(st.expired, 1u);
  EXPECT_EQ(st.batches, 0u);  // no forward pass was paid
  EXPECT_EQ(st.completed, 0u);
  EXPECT_EQ(st.in_flight(), 0u);
  EXPECT_EQ(st.queue_depth, 0u);
  // Expired requests are excluded from the latency accounting.
  EXPECT_EQ(st.latency_us_sum, 0u);
}

TEST(ServeDeadline, MetDeadlineCompletesNormally) {
  const serve::InferenceEngine engine(make_bundle());
  ScriptedClock clock;
  serve::BatchScheduler sched(manual_cfg(clock, 64, 8, /*linger_us=*/100));

  serve::Submitted sub = sched.submit(engine, one(1), with_deadline(500));
  clock.advance_us(100);  // linger cut fires well before the deadline
  EXPECT_EQ(sched.pump(), 1u);
  EXPECT_EQ(sub.result.get()[0], engine.predict(test_dataset()[1]));
  EXPECT_EQ(sched.stats().expired, 0u);
  EXPECT_EQ(sched.stats().completed, 1u);
}

TEST(ServeDeadline, NegativeDeadlineShedAtAdmission) {
  const serve::InferenceEngine engine(make_bundle());
  ScriptedClock clock;
  serve::BatchScheduler sched(manual_cfg(clock));

  const serve::Submitted sub =
      sched.submit(engine, one(0), with_deadline(-1));
  EXPECT_FALSE(sub.admitted());
  EXPECT_EQ(sub.error, serve::ServeError::kDeadlineExceeded);
  const serve::ServeStats st = sched.stats();
  EXPECT_EQ(st.submitted, 1u);
  EXPECT_EQ(st.shed, 1u);
  EXPECT_EQ(st.admitted, 0u);
}

TEST(ServeDeadline, ExpiredRequestDoesNotPoisonBatchmates) {
  const serve::InferenceEngine engine(make_bundle());
  ScriptedClock clock;
  serve::BatchScheduler sched(manual_cfg(clock, 64, 8, /*linger_us=*/100));

  serve::Submitted doomed = sched.submit(engine, one(0), with_deadline(10));
  serve::Submitted fine = sched.submit(engine, one(1));
  clock.advance_us(100);  // past the deadline AND the linger cut
  EXPECT_EQ(sched.pump(), 1u);  // one batch: the survivor alone
  EXPECT_THROW((void)doomed.result.get(), serve::DeadlineExceededError);
  EXPECT_EQ(fine.result.get()[0], engine.predict(test_dataset()[1]));
  const serve::ServeStats st = sched.stats();
  EXPECT_EQ(st.expired, 1u);
  EXPECT_EQ(st.completed, 1u);
  EXPECT_EQ(st.batch_samples, 1u);  // the expired sample never executed
}

// ---- cancellation ---------------------------------------------------------

TEST(ServeCancel, CancelBeforeExecutionResolvesTyped) {
  const serve::InferenceEngine engine(make_bundle());
  ScriptedClock clock;
  serve::BatchScheduler sched(manual_cfg(clock));

  serve::Submitted sub = sched.submit(engine, one(0));
  ASSERT_TRUE(sub.admitted());
  sub.request_cancel();
  sub.request_cancel();  // idempotent
  clock.advance_us(100);
  EXPECT_EQ(sched.pump(), 0u);  // reaped before any batch formed
  EXPECT_THROW((void)sub.result.get(), serve::CancelledError);
  const serve::ServeStats st = sched.stats();
  EXPECT_EQ(st.cancelled, 1u);
  EXPECT_EQ(st.batches, 0u);
  EXPECT_EQ(st.in_flight(), 0u);
}

TEST(ServeCancel, CancelAfterCompletionIsANoOp) {
  const serve::InferenceEngine engine(make_bundle());
  ScriptedClock clock;
  serve::BatchScheduler sched(manual_cfg(clock));

  serve::Submitted sub = sched.submit(engine, one(2));
  clock.advance_us(100);
  EXPECT_EQ(sched.pump(), 1u);
  sub.request_cancel();  // too late: the request already completed
  clock.advance_us(100);
  EXPECT_EQ(sched.pump(), 0u);
  EXPECT_EQ(sub.result.get()[0], engine.predict(test_dataset()[2]));
  EXPECT_EQ(sched.stats().cancelled, 0u);
  EXPECT_EQ(sched.stats().completed, 1u);
}

// ---- graceful drain -------------------------------------------------------

TEST(ServeDrain, CompletesAdmittedAndShedsNew) {
  const serve::InferenceEngine engine(make_bundle());
  ScriptedClock clock;
  serve::BatchScheduler sched(manual_cfg(clock, 64, 8, /*linger_us=*/100));

  serve::Submitted a = sched.submit(engine, one(0));
  serve::Submitted b = sched.submit(engine, one(1));
  // Clock never advances: linger has NOT expired — drain must execute
  // the admitted work anyway.
  sched.drain();
  EXPECT_EQ(a.result.get()[0], engine.predict(test_dataset()[0]));
  EXPECT_EQ(b.result.get()[0], engine.predict(test_dataset()[1]));

  // The scheduler stays draining: new work is shed, typed and COUNTED
  // (unlike shutdown's uncounted kShutdown refusals).
  const serve::Submitted late = sched.submit(engine, one(2));
  EXPECT_FALSE(late.admitted());
  EXPECT_EQ(late.error, serve::ServeError::kDraining);

  const serve::ServeStats st = sched.stats();
  EXPECT_EQ(st.submitted, 3u);
  EXPECT_EQ(st.admitted, 2u);
  EXPECT_EQ(st.shed, 1u);
  EXPECT_EQ(st.completed, 2u);
  EXPECT_EQ(st.in_flight(), 0u);
  EXPECT_EQ(st.submitted, st.admitted + st.shed);

  sched.drain();  // idempotent
  sched.shutdown();  // and shutdown still terminates cleanly afterwards
}

TEST(ServeDrain, ResolvesExpiredAndCancelledTyped) {
  const serve::InferenceEngine engine(make_bundle());
  ScriptedClock clock;
  serve::BatchScheduler sched(manual_cfg(clock));

  serve::Submitted expired = sched.submit(engine, one(0), with_deadline(10));
  serve::Submitted cancelled = sched.submit(engine, one(1));
  serve::Submitted live = sched.submit(engine, one(2));
  cancelled.request_cancel();
  clock.advance_us(50);  // past the deadline, short of the linger
  sched.drain();

  EXPECT_THROW((void)expired.result.get(), serve::DeadlineExceededError);
  EXPECT_THROW((void)cancelled.result.get(), serve::CancelledError);
  EXPECT_EQ(live.result.get()[0], engine.predict(test_dataset()[2]));
  const serve::ServeStats st = sched.stats();
  EXPECT_EQ(st.expired, 1u);
  EXPECT_EQ(st.cancelled, 1u);
  EXPECT_EQ(st.completed, 1u);
  EXPECT_EQ(st.admitted,
            st.completed + st.failed + st.cancelled + st.expired);
}

TEST(ServeDrain, ThreadedDrainLosesNoFutures) {
  const serve::InferenceEngine engine(make_bundle());
  serve::SchedulerConfig cfg;
  cfg.max_queue_depth = 256;
  cfg.max_batch_samples = 4;
  cfg.max_linger = microseconds(200);
  serve::BatchScheduler sched(cfg);  // real clock + drainer thread

  // Mixed workload: tight deadlines (may expire), no deadlines, and a
  // few cancellations — outcomes are timing-dependent, but drain() must
  // resolve EVERY admitted future whatever the interleaving.
  constexpr std::size_t kRequests = 48;
  std::vector<serve::Submitted> subs;
  subs.reserve(kRequests);
  for (std::size_t i = 0; i < kRequests; ++i) {
    const std::int64_t deadline_us = i % 3 == 0 ? 1 : 0;
    subs.push_back(sched.submit(engine, one(i % test_dataset().size()),
                                with_deadline(deadline_us)));
    if (i % 7 == 0) subs.back().request_cancel();
  }
  sched.drain();

  std::size_t resolved = 0, admitted = 0;
  for (serve::Submitted& sub : subs) {
    if (!sub.admitted()) continue;
    ++admitted;
    ASSERT_EQ(sub.result.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    try {
      (void)sub.result.get();
      ++resolved;
    } catch (const std::exception&) {
      ++resolved;  // typed failure is still a resolution
    }
  }
  EXPECT_EQ(resolved, admitted);

  const serve::ServeStats st = sched.stats();
  EXPECT_EQ(st.submitted, kRequests);
  EXPECT_EQ(st.submitted, st.admitted + st.shed);
  EXPECT_EQ(st.admitted,
            st.completed + st.failed + st.cancelled + st.expired);
  EXPECT_EQ(st.in_flight(), 0u);

  const serve::Submitted late = sched.submit(engine, one(0));
  EXPECT_EQ(late.error, serve::ServeError::kDraining);
}

// ---- hot bundle reload ----------------------------------------------------

TEST(ServeHotReload, SwapIsAtomicAndPinsInFlightRequests) {
  serve::ModelRegistry registry(1);
  registry.add("m", make_bundle(/*init_seed=*/5));
  ScriptedClock clock;
  serve::BatchScheduler sched(manual_cfg(clock));

  std::shared_ptr<const serve::InferenceEngine> old_engine =
      registry.find_shared("m");
  const std::vector<double> expect_old =
      old_engine->predict(test_dataset()[0]);

  // Admit against the OLD engine, then hot-swap before execution.
  serve::Submitted pinned = sched.submit(registry, "m", one(0));
  ASSERT_TRUE(pinned.admitted());
  old_engine.reset();  // only the in-flight request pins the old engine now
  registry.swap_bundle("m", make_bundle(/*init_seed=*/6));
  EXPECT_EQ(registry.retired_alive(), 1u);

  // A post-swap submission resolves the NEW engine...
  serve::Submitted fresh = sched.submit(registry, "m", one(0));
  clock.advance_us(100);
  // ...and the two engines never share a batch (grouping is by engine
  // identity), so two batches execute.
  EXPECT_EQ(sched.pump(), 2u);

  const std::vector<double> got_old = pinned.result.get()[0];
  const std::vector<double> got_new = fresh.result.get()[0];
  EXPECT_EQ(got_old, expect_old);
  EXPECT_EQ(got_new, registry.at("m").predict(test_dataset()[0]));
  EXPECT_NE(got_old, got_new);  // different weights, different function

  // Last holder released at execution: the retired engine is gone and
  // registry drain is immediate.
  EXPECT_EQ(registry.retired_alive(), 0u);
  registry.drain();
  EXPECT_EQ(registry.size(), 1u);
}

TEST(ServeHotReload, SwapUnknownNameThrowsAndChangesNothing) {
  serve::ModelRegistry registry(1);
  registry.add("m", make_bundle());
  EXPECT_THROW(registry.swap_bundle("ghost", make_bundle()),
               std::invalid_argument);
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.names(), std::vector<std::string>{"m"});
  EXPECT_EQ(registry.retired_alive(), 0u);
}

TEST(ServeHotReload, RepeatedSwapsStayBounded) {
  serve::ModelRegistry registry(1);
  registry.add("m", make_bundle(1));
  for (std::uint64_t seed = 2; seed <= 5; ++seed)
    registry.swap_bundle("m", make_bundle(seed));
  // No in-flight holders: every retired engine is already dead.
  EXPECT_EQ(registry.retired_alive(), 0u);
  registry.drain();
  // The surviving engine is the last swap's.
  const serve::InferenceEngine fresh(make_bundle(5));
  EXPECT_EQ(registry.at("m").predict(test_dataset()[0]),
            fresh.predict(test_dataset()[0]));
}

}  // namespace
