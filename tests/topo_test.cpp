// Unit tests for src/topo: graph mechanics, topology attributes, the zoo.
#include <gtest/gtest.h>

#include <set>

#include "topo/graph.hpp"
#include "topo/topology.hpp"
#include "topo/zoo.hpp"

namespace {

using namespace rnx::topo;
using rnx::util::RngStream;

// ---- Graph ---------------------------------------------------------------

TEST(Graph, AddLinkAssignsSequentialIds) {
  Graph g(3);
  EXPECT_EQ(g.add_link(0, 1), 0u);
  EXPECT_EQ(g.add_link(1, 2), 1u);
  EXPECT_EQ(g.num_links(), 2u);
  EXPECT_EQ(g.link(0).src, 0u);
  EXPECT_EQ(g.link(1).dst, 2u);
}

TEST(Graph, RejectsSelfLoopAndParallel) {
  Graph g(3);
  g.add_link(0, 1);
  EXPECT_THROW(g.add_link(0, 0), std::invalid_argument);
  EXPECT_THROW(g.add_link(0, 1), std::invalid_argument);
  EXPECT_THROW(g.add_link(0, 5), std::out_of_range);
}

TEST(Graph, AddEdgeCreatesBothDirections) {
  Graph g(2);
  g.add_edge(0, 1);
  EXPECT_EQ(g.num_links(), 2u);
  ASSERT_TRUE(g.find_link(0, 1).has_value());
  ASSERT_TRUE(g.find_link(1, 0).has_value());
  EXPECT_NE(*g.find_link(0, 1), *g.find_link(1, 0));
}

TEST(Graph, FindLinkMissing) {
  Graph g(3);
  g.add_link(0, 1);
  EXPECT_FALSE(g.find_link(1, 0).has_value());
  EXPECT_FALSE(g.find_link(2, 9).has_value());
}

TEST(Graph, OutLinksListsOnlyOwn) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_EQ(g.out_links(0).size(), 1u);
  EXPECT_EQ(g.out_links(1).size(), 2u);
  for (const auto l : g.out_links(1)) EXPECT_EQ(g.link(l).src, 1u);
}

TEST(Graph, StronglyConnected) {
  Graph ring(3);
  ring.add_link(0, 1);
  ring.add_link(1, 2);
  ring.add_link(2, 0);
  EXPECT_TRUE(ring.strongly_connected());

  Graph chain(3);
  chain.add_link(0, 1);
  chain.add_link(1, 2);
  EXPECT_FALSE(chain.strongly_connected());
}

TEST(Graph, ZeroNodesRejected) {
  EXPECT_THROW(Graph(0), std::invalid_argument);
}

// ---- Topology --------------------------------------------------------------

TEST(Topology, AttributeRoundTrip) {
  Topology t = line(3, 10e6);
  t.set_link_capacity(0, 25e6);
  EXPECT_DOUBLE_EQ(t.link_capacity(0), 25e6);
  EXPECT_DOUBLE_EQ(t.link_capacity(1), 10e6);
  t.set_queue_size(1, 4);
  EXPECT_EQ(t.queue_size(1), 4u);
  t.set_link_prop_delay(0, 0.001);
  EXPECT_DOUBLE_EQ(t.link_prop_delay(0), 0.001);
}

TEST(Topology, RejectsInvalidAttributes) {
  Topology t = line(3);
  EXPECT_THROW(t.set_link_capacity(0, 0.0), std::invalid_argument);
  EXPECT_THROW(t.set_queue_size(0, 0), std::invalid_argument);
  EXPECT_THROW(t.set_link_prop_delay(0, -1.0), std::invalid_argument);
}

TEST(Topology, DefaultQueueIsStandard) {
  const Topology t = line(4);
  for (NodeId n = 0; n < 4; ++n)
    EXPECT_EQ(t.queue_size(n), kStandardQueuePackets);
}

// ---- zoo -------------------------------------------------------------------

TEST(Zoo, NsfnetShape) {
  const Topology t = nsfnet();
  EXPECT_EQ(t.num_nodes(), 14u);
  EXPECT_EQ(t.num_links(), 42u);  // 21 undirected edges
  EXPECT_TRUE(t.graph().strongly_connected());
}

TEST(Zoo, Geant2Shape) {
  const Topology t = geant2();
  EXPECT_EQ(t.num_nodes(), 24u);
  EXPECT_EQ(t.num_links(), 74u);  // 37 undirected edges
  EXPECT_TRUE(t.graph().strongly_connected());
}

TEST(Zoo, ZooTopologiesAreSymmetric) {
  for (const Topology& t : {nsfnet(), geant2()}) {
    for (const auto& l : t.graph().links())
      EXPECT_TRUE(t.graph().find_link(l.dst, l.src).has_value())
          << t.name() << " missing reverse of " << l.src << "->" << l.dst;
  }
}

TEST(Zoo, LineRingStarShapes) {
  EXPECT_EQ(line(5).num_links(), 8u);
  EXPECT_EQ(ring(5).num_links(), 10u);
  EXPECT_EQ(star(4).num_nodes(), 5u);
  EXPECT_EQ(star(4).num_links(), 8u);
  EXPECT_THROW(line(1), std::invalid_argument);
  EXPECT_THROW(ring(2), std::invalid_argument);
}

TEST(Zoo, RandomConnectedHasRequestedShape) {
  RngStream rng(3);
  const Topology t = random_connected(12, 20, rng);
  EXPECT_EQ(t.num_nodes(), 12u);
  EXPECT_EQ(t.num_links(), 40u);
  EXPECT_TRUE(t.graph().strongly_connected());
}

TEST(Zoo, RandomConnectedRejectsBadEdgeCount) {
  RngStream rng(3);
  EXPECT_THROW(random_connected(5, 3, rng), std::invalid_argument);
  EXPECT_THROW(random_connected(5, 11, rng), std::invalid_argument);
}

TEST(Zoo, RandomConnectedIsSeedDeterministic) {
  RngStream r1(11), r2(11);
  const Topology a = random_connected(10, 15, r1);
  const Topology b = random_connected(10, 15, r2);
  ASSERT_EQ(a.num_links(), b.num_links());
  for (LinkId l = 0; l < a.num_links(); ++l) {
    EXPECT_EQ(a.graph().link(l).src, b.graph().link(l).src);
    EXPECT_EQ(a.graph().link(l).dst, b.graph().link(l).dst);
  }
}

TEST(Zoo, BarabasiAlbertShape) {
  RngStream rng(5);
  const Topology t = barabasi_albert(20, 2, rng);
  EXPECT_EQ(t.num_nodes(), 20u);
  // clique(3)=3 edges + 17 nodes x 2 attachments = 37 undirected edges.
  EXPECT_EQ(t.num_links(), 74u);
  EXPECT_TRUE(t.graph().strongly_connected());
}

TEST(Zoo, RandomizeCapacitiesSymmetricAndFromChoices) {
  RngStream rng(7);
  Topology t = geant2();
  const std::vector<double> choices = {10e6, 20e6, 40e6};
  randomize_capacities(t, choices, rng);
  const std::set<double> allowed(choices.begin(), choices.end());
  for (LinkId l = 0; l < t.num_links(); ++l) {
    EXPECT_TRUE(allowed.contains(t.link_capacity(l)));
    const auto& lk = t.graph().link(l);
    const auto rev = t.graph().find_link(lk.dst, lk.src);
    ASSERT_TRUE(rev.has_value());
    EXPECT_DOUBLE_EQ(t.link_capacity(l), t.link_capacity(*rev));
  }
}

TEST(Zoo, RandomizeQueueSizesUsesBothRegimes) {
  RngStream rng(9);
  Topology t = geant2();
  randomize_queue_sizes(t, 0.5, rng);
  std::size_t tiny = 0, standard = 0;
  for (NodeId n = 0; n < t.num_nodes(); ++n) {
    if (t.queue_size(n) == kTinyQueuePackets) ++tiny;
    else if (t.queue_size(n) == kStandardQueuePackets) ++standard;
    else FAIL() << "unexpected queue size";
  }
  EXPECT_GT(tiny, 0u);
  EXPECT_GT(standard, 0u);
}

TEST(Zoo, RandomizeQueueSizesExtremes) {
  RngStream rng(9);
  Topology t = nsfnet();
  randomize_queue_sizes(t, 0.0, rng);
  for (NodeId n = 0; n < t.num_nodes(); ++n)
    EXPECT_EQ(t.queue_size(n), kStandardQueuePackets);
  randomize_queue_sizes(t, 1.0, rng);
  for (NodeId n = 0; n < t.num_nodes(); ++n)
    EXPECT_EQ(t.queue_size(n), kTinyQueuePackets);
}

// Degree profile sanity for the paper's two topologies: mean degree ~3.
TEST(Zoo, PaperTopologyDegreeProfiles) {
  for (const Topology& t : {nsfnet(), geant2()}) {
    const double mean_degree =
        static_cast<double>(t.num_links()) / static_cast<double>(t.num_nodes());
    EXPECT_GE(mean_degree, 2.5) << t.name();
    EXPECT_LE(mean_degree, 3.5) << t.name();
    for (NodeId n = 0; n < t.num_nodes(); ++n)
      EXPECT_GE(t.graph().out_links(n).size(), 2u)
          << t.name() << " node " << n;
  }
}

}  // namespace
