// Unit tests for src/util: RNG streams, statistics, tables.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using rnx::util::Cdf;
using rnx::util::Histogram;
using rnx::util::RngStream;
using rnx::util::Welford;

// ---- RngStream -----------------------------------------------------------

TEST(Rng, SameSeedSameSequence) {
  RngStream a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  RngStream a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, DeriveIsDeterministic) {
  const RngStream root(42);
  RngStream c1 = root.derive("flow", 7);
  RngStream c2 = root.derive("flow", 7);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(c1(), c2());
}

TEST(Rng, DeriveByLabelAndIndexAreIndependent) {
  const RngStream root(42);
  RngStream a = root.derive("flow", 0);
  RngStream b = root.derive("flow", 1);
  RngStream c = root.derive("init", 0);
  EXPECT_NE(a(), b());
  RngStream a2 = root.derive("flow", 0);
  EXPECT_NE(a2(), c());
}

TEST(Rng, DeriveDoesNotAdvanceParent) {
  RngStream root(42);
  const auto child = root.derive("x");
  (void)child;
  RngStream fresh(42);
  EXPECT_EQ(root(), fresh());
}

TEST(Rng, UniformInUnitInterval) {
  RngStream r(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  RngStream r(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(2.5, 7.5);
    EXPECT_GE(u, 2.5);
    EXPECT_LT(u, 7.5);
  }
}

TEST(Rng, UniformIntBoundsInclusive) {
  RngStream r(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniform_int(3, 6);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 6);
    saw_lo |= (v == 3);
    saw_hi |= (v == 6);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMeanMatches) {
  RngStream r(11);
  double sum = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += r.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(Rng, NormalMomentsMatch) {
  RngStream r(13);
  Welford w;
  for (int i = 0; i < 200'000; ++i) w.add(r.normal(1.5, 2.0));
  EXPECT_NEAR(w.mean(), 1.5, 0.03);
  EXPECT_NEAR(w.stddev(), 2.0, 0.03);
}

TEST(Rng, BernoulliFrequency) {
  RngStream r(17);
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ParetoAboveScale) {
  RngStream r(19);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(r.pareto(2.0, 1.5), 1.5);
}

// Chi-squared sanity: 64 bins of uniform() should be flat.
TEST(Rng, UniformChiSquared) {
  RngStream r(23);
  constexpr int kBins = 64, kN = 64'000;
  int counts[kBins] = {};
  for (int i = 0; i < kN; ++i)
    ++counts[static_cast<int>(r.uniform() * kBins)];
  double chi2 = 0.0;
  const double expect = static_cast<double>(kN) / kBins;
  for (const int c : counts) chi2 += (c - expect) * (c - expect) / expect;
  // 63 dof: mean 63, stddev ~11.2.  5-sigma guard band.
  EXPECT_LT(chi2, 63 + 5 * 11.3);
}

// ---- Welford ---------------------------------------------------------------

TEST(Welford, MatchesDirectComputation) {
  const std::vector<double> xs = {1.0, 2.5, -3.0, 7.0, 0.0, 4.5};
  Welford w;
  for (const double x : xs) w.add(x);
  double mean = 0.0;
  for (const double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0.0;
  for (const double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size());
  EXPECT_NEAR(w.mean(), mean, 1e-12);
  EXPECT_NEAR(w.variance(), var, 1e-12);
  EXPECT_EQ(w.count(), xs.size());
  EXPECT_EQ(w.min(), -3.0);
  EXPECT_EQ(w.max(), 7.0);
}

TEST(Welford, EmptyIsZero) {
  const Welford w;
  EXPECT_EQ(w.count(), 0u);
  EXPECT_EQ(w.mean(), 0.0);
  EXPECT_EQ(w.variance(), 0.0);
}

TEST(Welford, SampleVarianceBesselCorrected) {
  Welford w;
  w.add(1.0);
  w.add(3.0);
  EXPECT_NEAR(w.variance(), 1.0, 1e-12);         // population
  EXPECT_NEAR(w.sample_variance(), 2.0, 1e-12);  // Bessel
}

TEST(Welford, MergeEqualsSequential) {
  RngStream r(29);
  Welford a, b, all;
  for (int i = 0; i < 500; ++i) {
    const double x = r.normal();
    if (i % 2) a.add(x); else b.add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(Welford, MergeWithEmpty) {
  Welford a;
  a.add(2.0);
  Welford b;
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_EQ(b.mean(), 2.0);
}

// ---- percentile / Cdf ------------------------------------------------------

TEST(Percentile, EndpointsAndMidpoint) {
  const std::vector<double> xs = {5.0, 1.0, 3.0};
  EXPECT_EQ(rnx::util::percentile(xs, 0), 1.0);
  EXPECT_EQ(rnx::util::percentile(xs, 100), 5.0);
  EXPECT_EQ(rnx::util::percentile(xs, 50), 3.0);  // rank ceil(1.5) = 2
}

// Nearest-rank semantics: ceil(q/100 * N)-th order statistic, always an
// observed sample, never interpolated.
TEST(Percentile, NearestRankNeverInterpolates) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_EQ(rnx::util::percentile(xs, 25), 0.0);   // rank ceil(0.5) = 1
  EXPECT_EQ(rnx::util::percentile(xs, 50), 0.0);   // rank ceil(1.0) = 1
  EXPECT_EQ(rnx::util::percentile(xs, 50.1), 10.0);  // rank ceil(1.002) = 2
  EXPECT_EQ(rnx::util::percentile(xs, 75), 10.0);  // rank ceil(1.5) = 2
}

// The case the serving tail reports hinge on: p99 of a 10-element
// latency window must be the worst observation (rank ceil(9.9) = 10),
// not a value fabricated between the two largest samples.
TEST(Percentile, P99OfTenSamplesIsWorstObservation) {
  std::vector<double> xs;
  for (int i = 1; i <= 10; ++i) xs.push_back(static_cast<double>(i));
  EXPECT_EQ(rnx::util::percentile(xs, 99), 10.0);
  EXPECT_EQ(rnx::util::percentile(xs, 90), 9.0);   // rank ceil(9.0) = 9
  EXPECT_EQ(rnx::util::percentile(xs, 90.1), 10.0);
  EXPECT_EQ(rnx::util::percentile(xs, 10), 1.0);   // rank ceil(1.0) = 1
  EXPECT_EQ(rnx::util::percentile(xs, 1), 1.0);    // rank clamps up to 1
}

TEST(Percentile, SingleSampleIsEveryPercentile) {
  const std::vector<double> xs = {42.0};
  for (const double q : {0.0, 1.0, 50.0, 99.0, 100.0})
    EXPECT_EQ(rnx::util::percentile(xs, q), 42.0);
}

TEST(Percentile, EmptyThrows) {
  EXPECT_THROW((void)rnx::util::percentile({}, 50), std::invalid_argument);
}

TEST(Cdf, AtMatchesDefinition) {
  Cdf cdf({1.0, 2.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.0), 0.75);
  EXPECT_DOUBLE_EQ(cdf.at(100.0), 1.0);
}

TEST(Cdf, SeriesIsMonotonic) {
  RngStream r(31);
  std::vector<double> xs;
  for (int i = 0; i < 300; ++i) xs.push_back(r.normal());
  Cdf cdf(std::move(xs));
  const auto series = cdf.series(50);
  ASSERT_EQ(series.size(), 50u);
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_LE(series[i - 1].first, series[i].first);
    EXPECT_LE(series[i - 1].second, series[i].second);
  }
  EXPECT_DOUBLE_EQ(series.back().second, 1.0);
}

TEST(Cdf, PercentileAgreesWithFreeFunction) {
  RngStream r(37);
  std::vector<double> xs;
  for (int i = 0; i < 101; ++i) xs.push_back(r.uniform());
  const Cdf cdf(xs);
  for (const double q : {1.0, 10.0, 50.0, 90.0, 99.0})
    EXPECT_NEAR(cdf.percentile(q), rnx::util::percentile(xs, q), 1e-12);
}

// ---- Histogram -------------------------------------------------------------

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 9
  h.add(-5.0);   // clamps to 0
  h.add(15.0);   // clamps to 9
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 3.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 4.0);
}

TEST(Histogram, BadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

// ---- Table / CSV -----------------------------------------------------------

TEST(Table, AlignedOutput) {
  rnx::util::Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  std::ostringstream ss;
  t.print(ss);
  const std::string out = ss.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  rnx::util::Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, CellFormatting) {
  EXPECT_EQ(rnx::util::Table::cell(1.23456, 2), "1.23");
  EXPECT_EQ(rnx::util::Table::cell(static_cast<std::size_t>(42)), "42");
}

TEST(Csv, WritesQuotedCells) {
  const std::string path = "/tmp/rnx_util_test.csv";
  {
    rnx::util::CsvWriter csv(path, {"a", "b"});
    csv.add_row({"plain", "has,comma"});
    csv.add_row({"has\"quote", "x"});
  }
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "a,b");
  std::getline(f, line);
  EXPECT_EQ(line, "plain,\"has,comma\"");
  std::getline(f, line);
  EXPECT_EQ(line, "\"has\"\"quote\",x");
  std::filesystem::remove(path);
}

TEST(Csv, RowWidthMismatchThrows) {
  rnx::util::CsvWriter csv("/tmp/rnx_util_test2.csv", {"a"});
  EXPECT_THROW(csv.add_row({"x", "y"}), std::invalid_argument);
  std::filesystem::remove("/tmp/rnx_util_test2.csv");
}

}  // namespace
