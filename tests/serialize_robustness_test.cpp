// Corrupt-input robustness of the serializers: a damaged .rnxw or
// .rnxd must fail with a descriptive error — never a multi-gigabyte
// allocation from an unchecked length field, and never the misleading
// "unknown parameter" that an unchecked partial name read used to
// produce.  Dataset writes must additionally be atomic: a failed save
// never clobbers a previously good file.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "data/dataset.hpp"
#include "data/generator.hpp"
#include "nn/layers.hpp"
#include "nn/serialize.hpp"
#include "topo/zoo.hpp"
#include "util/rng.hpp"

namespace {

using namespace rnx::nn;
using rnx::util::RngStream;

template <typename T>
void put(std::ostream& f, const T& v) {
  f.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

// A syntactically valid header claiming `count` parameters, then the
// first parameter's `name_len` and (optionally) some name bytes.
std::string file_with_name_len(std::uint64_t count, std::uint32_t name_len,
                               const std::string& name_bytes) {
  std::ostringstream f(std::ios::binary);
  f.write("RNXW", 4);
  put(f, std::uint32_t{1});  // version
  put(f, count);
  put(f, name_len);
  f.write(name_bytes.data(),
          static_cast<std::streamsize>(name_bytes.size()));
  return f.str();
}

TEST(SerializeRobustness, OversizedNameLengthRejectedFast) {
  RngStream rng(1);
  Mlp m({2, 2}, Activation::kNone, rng, "m");
  NamedParams params = m.named_params();

  // 4 GiB name length: must be rejected on the length check, not
  // attempted as an allocation + read.
  std::istringstream f(
      file_with_name_len(params.size(), 0xFFFFFFFFu, ""),
      std::ios::binary);
  try {
    load_params(f, params);
    FAIL() << "corrupt name length accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("name length"), std::string::npos)
        << e.what();
  }
}

TEST(SerializeRobustness, ZeroNameLengthRejected) {
  RngStream rng(2);
  Mlp m({2, 2}, Activation::kNone, rng, "m");
  NamedParams params = m.named_params();
  std::istringstream f(file_with_name_len(params.size(), 0, ""),
                       std::ios::binary);
  EXPECT_THROW(load_params(f, params), std::runtime_error);
}

TEST(SerializeRobustness, TruncationInsideNameIsDescriptive) {
  RngStream rng(3);
  Mlp m({2, 2}, Activation::kNone, rng, "m");
  NamedParams params = m.named_params();

  // Claims an 8-byte name but the file ends after 3 bytes: the old code
  // read a half-garbage name and reported "unknown parameter".
  std::istringstream f(file_with_name_len(params.size(), 8, "m.l"),
                       std::ios::binary);
  try {
    load_params(f, params);
    FAIL() << "truncated name accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos)
        << e.what();
    EXPECT_EQ(std::string(e.what()).find("unknown parameter"),
              std::string::npos)
        << e.what();
  }
}

TEST(SerializeRobustness, PathOverloadNamesTheFile) {
  RngStream rng(4);
  Mlp m({2, 2}, Activation::kNone, rng, "m");
  NamedParams params = m.named_params();
  const std::string path = "/tmp/rnx_serialize_robustness.rnxw";
  {
    std::ofstream f(path, std::ios::binary);
    const std::string bytes =
        file_with_name_len(params.size(), 0xFFFFFFFFu, "");
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  try {
    load_params(path, params);
    FAIL() << "corrupt file accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
        << e.what();
  }
  std::filesystem::remove(path);
}

// ---- dataset (.rnxd) header robustness --------------------------------------

namespace {
// A syntactically valid .rnxd prelude claiming `count` samples, with no
// sample payload behind it.
void write_dataset_header_only(const std::string& path,
                               std::uint64_t count) {
  std::ofstream f(path, std::ios::binary);
  f.write("RNXD", 4);
  put(f, std::uint32_t{2});  // current version
  put(f, count);
}
}  // namespace

TEST(DatasetRobustness, ImplausibleSampleCountRejectedBeforeAllocation) {
  const std::string path = "/tmp/rnx_dataset_huge_count.rnxd";
  // 2^60 claimed samples in a 16-byte file: must be rejected on the
  // header bound (remaining bytes / min sample size), not attempted as
  // a multi-GB reserve() followed by a slow truncation error.
  write_dataset_header_only(path, 1ull << 60);
  try {
    (void)rnx::data::Dataset::load(path);
    FAIL() << "corrupt sample count accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("implausible sample count"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
        << e.what();
  }
  std::filesystem::remove(path);
}

TEST(DatasetRobustness, CountMustFitRemainingBytes) {
  const std::string path = "/tmp/rnx_dataset_overcount.rnxd";
  // Even a modest over-claim must fail the same bound: 1000 samples
  // cannot fit in an empty payload.
  write_dataset_header_only(path, 1000);
  EXPECT_THROW((void)rnx::data::Dataset::load(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(DatasetRobustness, SaveIsAtomic) {
  namespace fs = std::filesystem;
  using rnx::data::Dataset;
  const std::string dir = "/tmp/rnx_atomic_save_test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string path = dir + "/ds.rnxd";

  rnx::data::GeneratorConfig cfg;
  cfg.target_packets = 5'000;
  const Dataset ds(
      rnx::data::generate_dataset(rnx::topo::ring(4), 2, cfg, 3));
  ds.save(path);
  // No temp residue after a successful save, and the file loads.
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  EXPECT_EQ(Dataset::load(path).size(), 2u);

  // A failing save (unwritable target directory) must throw without
  // touching anything at the destination.
  EXPECT_THROW(ds.save(dir + "/no_such_dir/ds.rnxd"), std::runtime_error);
  EXPECT_FALSE(fs::exists(dir + "/no_such_dir"));

  // Overwrite keeps the previous file intact until the rename: after a
  // successful second save the content is the new dataset, with no
  // temp file left behind.
  const Dataset ds2(
      rnx::data::generate_dataset(rnx::topo::ring(4), 3, cfg, 5));
  ds2.save(path);
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  EXPECT_EQ(Dataset::load(path).size(), 3u);
  fs::remove_all(dir);
}

TEST(SerializeRobustness, StreamRoundTripIsBitwise) {
  RngStream rng(5);
  Mlp a({3, 4, 2}, Activation::kRelu, rng, "m");
  std::ostringstream out(std::ios::binary);
  save_params(out, a.named_params());

  RngStream rng2(77);
  Mlp b({3, 4, 2}, Activation::kRelu, rng2, "m");
  NamedParams pb = b.named_params();
  std::istringstream in(out.str(), std::ios::binary);
  load_params(in, pb);

  const NamedParams pa = a.named_params();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    const auto& ta = pa[i].second.value();
    const auto& tb = pb[i].second.value();
    ASSERT_EQ(ta.size(), tb.size());
    for (std::size_t j = 0; j < ta.size(); ++j)
      EXPECT_EQ(ta.flat()[j], tb.flat()[j]);
  }
}

}  // namespace
