// predict_batch coverage gap (ISSUE 4): empty batches, ragged sample
// sizes, feature-gating through the batch path, and concurrent batch
// calls after the global batch mutex was replaced by the scheduler.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/model.hpp"
#include "data/dataset.hpp"
#include "data/generator.hpp"
#include "serve/inference.hpp"
#include "topo/zoo.hpp"
#include "util/log.hpp"

namespace {

using namespace rnx;

const data::Dataset& nsfnet_dataset() {
  static const data::Dataset ds = [] {
    util::set_log_level(util::LogLevel::kWarn);
    data::GeneratorConfig gen;
    gen.target_packets = 20'000;
    return data::Dataset(data::generate_dataset(topo::nsfnet(), 3, gen, 29));
  }();
  return ds;
}

serve::ModelBundle make_bundle(bool scenario_features = false) {
  core::ModelConfig mc;
  mc.state_dim = 8;
  mc.readout_hidden = 12;
  mc.iterations = 2;
  mc.init_seed = 5;
  mc.scenario_features = scenario_features;
  serve::ModelBundle b;
  b.model = core::make_model(core::ModelKind::kExtended, mc);
  b.scaler = data::Scaler::fit(nsfnet_dataset().samples(), 5);
  b.target = core::PredictionTarget::kDelay;
  b.min_delivered = 5;
  return b;
}

TEST(ServeBatch, EmptyBatchReturnsEmpty) {
  const serve::InferenceEngine engine(make_bundle());
  EXPECT_TRUE(engine.predict_batch({}).empty());
}

// Samples with different path counts (different topologies) ride in one
// batch; every output vector has its own sample's length and value.
TEST(ServeBatch, RaggedSampleSizesInOneBatch) {
  const serve::InferenceEngine engine(make_bundle());
  data::GeneratorConfig gen;
  gen.target_packets = 20'000;
  const data::Dataset line_ds(
      data::generate_dataset(topo::line(4), 2, gen, 31));

  std::vector<data::Sample> mixed;
  mixed.push_back(nsfnet_dataset()[0]);
  mixed.push_back(line_ds[0]);
  mixed.push_back(nsfnet_dataset()[1]);
  mixed.push_back(line_ds[1]);
  ASSERT_NE(mixed[0].paths.size(), mixed[1].paths.size())
      << "test needs genuinely ragged samples";

  const std::vector<std::vector<double>> batch = engine.predict_batch(mixed);
  ASSERT_EQ(batch.size(), mixed.size());
  for (std::size_t i = 0; i < mixed.size(); ++i) {
    EXPECT_EQ(batch[i].size(), mixed[i].paths.size());
    EXPECT_EQ(batch[i], engine.predict(mixed[i]));
  }
}

// A feature-gated bundle must reject scenario-less samples through the
// batch path with the same descriptive error as the single path — and
// deterministically (first bad sample in sample order), not whichever
// lane happened to fail first.
TEST(ServeBatch, FeatureGateErrorIsIdenticalThroughBatchPath) {
  const serve::InferenceEngine engine(make_bundle(/*scenario_features=*/true));
  std::vector<data::Sample> mixed(nsfnet_dataset().samples().begin(),
                                  nsfnet_dataset().samples().end());
  mixed[1].scenario_recorded = false;  // as loaded from a v1 dataset

  std::string single_path_error;
  try {
    (void)engine.predict(mixed[1]);
  } catch (const std::runtime_error& e) {
    single_path_error = e.what();
  }
  ASSERT_NE(single_path_error.find("scenario"), std::string::npos)
      << single_path_error;

  try {
    (void)engine.predict_batch(mixed);
    FAIL() << "batch path served a scenario-less sample";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()), single_path_error);
  }
  // Scenario-recording batches serve fine.
  EXPECT_EQ(engine.predict_batch(nsfnet_dataset().samples()).size(),
            nsfnet_dataset().size());
}

// The old engine serialized concurrent predict_batch calls on one mutex;
// the scheduler now coalesces them.  Concurrent calls must neither
// deadlock nor change a single bit of output.
TEST(ServeBatch, ConcurrentBatchCallsCoalesceAndStayBitwiseIdentical) {
  const serve::InferenceEngine engine(make_bundle(), /*threads=*/2);
  const data::Dataset& ds = nsfnet_dataset();
  std::vector<std::vector<double>> expected;
  for (const data::Sample& s : ds.samples()) expected.push_back(engine.predict(s));

  std::atomic<std::size_t> mismatches{0};
  std::vector<std::thread> callers;
  for (int t = 0; t < 4; ++t)
    callers.emplace_back([&] {
      for (int rep = 0; rep < 3; ++rep) {
        const std::vector<std::vector<double>> got =
            engine.predict_batch(ds.samples());
        if (got.size() != ds.size()) {
          ++mismatches;
          continue;
        }
        for (std::size_t i = 0; i < got.size(); ++i)
          if (got[i] != expected[i]) ++mismatches;
      }
    });
  for (std::thread& t : callers) t.join();
  EXPECT_EQ(mismatches.load(), 0u);
}

}  // namespace
