// Fused GRU kernel vs the op-by-op composition: value parity, gradient
// parity, central-difference gradcheck, and tensor-pool behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/gradcheck.hpp"
#include "nn/gru.hpp"
#include "nn/ops.hpp"
#include "nn/pool.hpp"
#include "util/rng.hpp"

namespace {

using namespace rnx::nn;
using rnx::util::RngStream;

Tensor random_tensor(std::size_t r, std::size_t c, RngStream& rng) {
  Tensor t(r, c);
  for (auto& x : t.flat()) x = rng.uniform(-1.0, 1.0);
  return t;
}

std::vector<Var> cell_params(const GRUCell& cell) {
  std::vector<Var> out;
  for (const auto& [n, v] : cell.named_params()) out.push_back(v);
  return out;
}

TEST(GruFused, ForwardMatchesComposed) {
  RngStream rng(21);
  const GRUCell cell(5, 7, rng);
  const Var x = constant(random_tensor(9, 5, rng));
  const Var h = constant(random_tensor(9, 7, rng));
  const Tensor fused = cell.step(x, h).value();
  const Tensor composed = cell.step_composed(x, h).value();
  ASSERT_TRUE(fused.same_shape(composed));
  for (std::size_t i = 0; i < fused.size(); ++i)
    EXPECT_NEAR(fused.flat()[i], composed.flat()[i], 1e-14);
}

TEST(GruFused, GradientsMatchComposedAllParamsAndInputs) {
  RngStream rng(22);
  const GRUCell cell(4, 6, rng);
  const Tensor xv = random_tensor(8, 4, rng);
  const Tensor hv = random_tensor(8, 6, rng);

  auto run = [&](bool fused) {
    Var x(xv, /*requires_grad=*/true);
    Var h(hv, /*requires_grad=*/true);
    const Var y = fused ? cell.step(x, h) : cell.step_composed(x, h);
    sum_all(mul(y, y)).backward();  // nonuniform downstream gradient
    std::vector<Tensor> grads{x.grad(), h.grad()};
    for (auto& p : cell_params(cell)) {
      grads.push_back(p.grad());
      p.zero_grad();
    }
    return grads;
  };

  const auto fused = run(true);
  const auto composed = run(false);
  ASSERT_EQ(fused.size(), composed.size());
  for (std::size_t t = 0; t < fused.size(); ++t) {
    ASSERT_TRUE(fused[t].same_shape(composed[t]));
    for (std::size_t i = 0; i < fused[t].size(); ++i)
      EXPECT_NEAR(fused[t].flat()[i], composed[t].flat()[i], 1e-12)
          << "tensor " << t << " entry " << i;
  }
}

TEST(GruFused, GradcheckAgainstCentralDifferences) {
  RngStream rng(23);
  const GRUCell cell(3, 4, rng);
  const Tensor xv = random_tensor(5, 3, rng);
  const Tensor hv = random_tensor(5, 4, rng);
  Var x(xv, true);
  Var h(hv, true);
  std::vector<Var> params = cell_params(cell);
  params.push_back(x);
  params.push_back(h);
  const auto report = grad_check(
      [&] { return mean_all(cell.step(x, h)); }, params);
  EXPECT_TRUE(report.ok(1e-6)) << "max rel err " << report.max_rel_err;
}

TEST(GruFused, BpttThroughFusedSteps) {
  // Two chained fused steps: the saved activations of step 1 must survive
  // until step 2's backward routes gradient through them.
  RngStream rng(24);
  const GRUCell cell(2, 3, rng);
  const Tensor x1 = random_tensor(4, 2, rng);
  const Tensor x2 = random_tensor(4, 2, rng);
  std::vector<Var> params = cell_params(cell);
  const auto report = grad_check(
      [&] {
        Var h = constant(Tensor::zeros(4, 3));
        h = cell.step(constant(x1), h);
        h = cell.step(constant(x2), h);
        return mean_all(h);
      },
      params);
  EXPECT_TRUE(report.ok(1e-6)) << "max rel err " << report.max_rel_err;
}

TEST(GruFused, NoGradModeBuildsNoTape) {
  RngStream rng(25);
  const GRUCell cell(3, 3, rng);
  const NoGradGuard guard;
  const Var y = cell.step(constant(random_tensor(2, 3, rng)),
                          constant(random_tensor(2, 3, rng)));
  EXPECT_FALSE(y.requires_grad());
  EXPECT_TRUE(y.node()->parents.empty());
}

TEST(TensorPool, RecyclesBuffers) {
  TensorPool::drain();
  Tensor a = TensorPool::acquire(4, 4);
  a(0, 0) = 7.0;
  TensorPool::release(std::move(a));
  EXPECT_EQ(TensorPool::pooled_count(), 1u);
  const Tensor b = TensorPool::acquire(2, 8);  // same element count, reused
  EXPECT_EQ(TensorPool::pooled_count(), 0u);
  EXPECT_EQ(b.rows(), 2u);
  EXPECT_EQ(b.cols(), 8u);
  for (const double v : b.flat()) EXPECT_EQ(v, 0.0);  // zeroed on reuse
  TensorPool::drain();
}

TEST(TensorPool, TakeBufferEmptiesTensor) {
  Tensor t(3, 2);
  auto buf = std::move(t).take_buffer();
  EXPECT_EQ(buf.size(), 6u);
  EXPECT_TRUE(t.empty());  // NOLINT(bugprone-use-after-move): documented
}

}  // namespace
