// Strict numeric CLI parsing: std::atof/atoll silently returned 0 on
// garbage, so "--epochs ten" trained for 0 epochs and "--epochs -3"
// wrapped to a huge std::size_t.  Bad numeric input must be a usage
// error (exit code 2), never a silent default.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "../tools/cli.hpp"

namespace {

using rnx::cli::Args;
using rnx::cli::parse_double;
using rnx::cli::parse_size;

TEST(CliParse, DoubleAcceptsNumbers) {
  EXPECT_EQ(parse_double("1.5"), 1.5);
  EXPECT_EQ(parse_double("2e-3"), 2e-3);
  EXPECT_EQ(parse_double("-0.25"), -0.25);
  EXPECT_EQ(parse_double("42"), 42.0);
}

TEST(CliParse, DoubleRejectsGarbage) {
  EXPECT_EQ(parse_double(""), std::nullopt);
  EXPECT_EQ(parse_double("ten"), std::nullopt);
  EXPECT_EQ(parse_double("1.5x"), std::nullopt);
  EXPECT_EQ(parse_double("1.5 "), std::nullopt);
  EXPECT_EQ(parse_double("nan"), std::nullopt);
  EXPECT_EQ(parse_double("inf"), std::nullopt);
  EXPECT_EQ(parse_double("1e999"), std::nullopt);  // overflow
}

TEST(CliParse, SizeAcceptsCounts) {
  EXPECT_EQ(parse_size("0"), std::size_t{0});
  EXPECT_EQ(parse_size("42"), std::size_t{42});
  EXPECT_EQ(parse_size("100000"), std::size_t{100000});
}

TEST(CliParse, SizeRejectsGarbageSignsAndOverflow) {
  EXPECT_EQ(parse_size(""), std::nullopt);
  EXPECT_EQ(parse_size("ten"), std::nullopt);
  EXPECT_EQ(parse_size("3.5"), std::nullopt);
  EXPECT_EQ(parse_size("10x"), std::nullopt);
  EXPECT_EQ(parse_size("-3"), std::nullopt);  // must not wrap to 2^64-3
  EXPECT_EQ(parse_size("+3"), std::nullopt);
  EXPECT_EQ(parse_size("99999999999999999999"), std::nullopt);  // overflow
}

// -- Args end-to-end: bad values exit with code 2 ------------------------

Args make_args(std::vector<std::string> argv_strings) {
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>("tool"));
  for (auto& s : argv_strings) argv.push_back(s.data());
  return Args(static_cast<int>(argv.size()), argv.data(),
              {"epochs", "lr", "out", "plan-cache-mb"},
              "usage: tool [options]");
}

TEST(CliArgs, ValidValuesParse) {
  std::vector<std::string> raw = {"--epochs", "12", "--lr=0.5"};
  const Args args = make_args(raw);
  EXPECT_EQ(args.get("epochs", std::size_t{1}), 12u);
  EXPECT_EQ(args.get("lr", 0.1), 0.5);
  EXPECT_EQ(args.get("out", std::string("d")), "d");  // fallback untouched
}

TEST(CliArgsDeathTest, NonNumericValueExits2) {
  const Args args = make_args({"--epochs", "ten"});
  EXPECT_EXIT((void)args.get("epochs", std::size_t{1}),
              ::testing::ExitedWithCode(2), "invalid value for --epochs");
}

TEST(CliArgsDeathTest, NegativeCountExits2) {
  const Args args = make_args({"--epochs", "-3"});
  EXPECT_EXIT((void)args.get("epochs", std::size_t{1}),
              ::testing::ExitedWithCode(2), "non-negative");
}

TEST(CliArgsDeathTest, NonNumericDoubleExits2) {
  const Args args = make_args({"--lr", "fast"});
  EXPECT_EXIT((void)args.get("lr", 0.1), ::testing::ExitedWithCode(2),
              "invalid value for --lr");
}

TEST(CliArgsDeathTest, UnknownFlagExits2) {
  EXPECT_EXIT((void)make_args({"--typo", "1"}),
              ::testing::ExitedWithCode(2), "unknown flag");
}

// -- get_positive: the --plan-cache-mb contract ---------------------------
// A byte budget of zero would mean "evict everything immediately" and a
// negative one would wrap; both are usage errors (exit 2), matching how
// rnx_predict/rnx_serve parse --plan-cache-mb.

TEST(CliArgs, PositiveValueParses) {
  const Args args = make_args({"--plan-cache-mb", "64"});
  EXPECT_EQ(args.get_positive("plan-cache-mb", std::size_t{1}), 64u);
  // Absent flag falls back without tripping the zero check.
  EXPECT_EQ(args.get_positive("epochs", std::size_t{7}), 7u);
}

TEST(CliArgsDeathTest, ZeroPlanCacheBudgetExits2) {
  const Args args = make_args({"--plan-cache-mb", "0"});
  EXPECT_EXIT((void)args.get_positive("plan-cache-mb", std::size_t{64}),
              ::testing::ExitedWithCode(2), "positive integer");
}

TEST(CliArgsDeathTest, NegativePlanCacheBudgetExits2) {
  const Args args = make_args({"--plan-cache-mb", "-16"});
  EXPECT_EXIT((void)args.get_positive("plan-cache-mb", std::size_t{64}),
              ::testing::ExitedWithCode(2), "non-negative");
}

}  // namespace
